// Fiber-backed virtual-time scheduler (SimBackend::kFiber, the default).
//
// Every rank is a stackful coroutine and all of them multiplex onto the
// host thread that called run(). A virtual-time handoff is a user-space
// stack switch — save callee-saved registers, swap stack pointers, restore
// — with no mutex, no condition variable and no kernel involvement, which
// is what makes 160-rank simulations run at model speed instead of
// host-scheduler speed. All scheduling decisions come from the shared
// SchedState, so event order and every virtual timestamp are bit-identical
// to the thread backend.
//
// Switch primitive: on x86-64 a ~20-instruction assembly routine
// (System V: rbx, rbp, r12-r15 are callee-saved; xmm registers are
// caller-saved and need no save). Elsewhere, POSIX ucontext — slower
// (swapcontext re-syncs the signal mask via a syscall) but portable.
//
// Sanitizers: under TSan the backend stays available — every stack switch
// is announced through the sanitizer's fiber API (__tsan_create_fiber /
// __tsan_switch_to_fiber), so TSan models each simulated rank as its own
// thread-of-execution and checks the flag protocol's happens-before edges
// across fibers. Only ASan compiles the backend out (it cannot track
// foreign stacks without per-switch start/finish bookkeeping); there
// VirtualScheduler::create falls back to the thread backend.
//
// Fiber stacks are mmap'd with a PROT_NONE guard page at the low end, so a
// rank function overflowing its stack faults loudly instead of corrupting
// a neighbouring fiber.
#include "sim/sched_internal.h"
#include "sim/scheduler.h"
#include "util/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define XHC_FIBERS_AVAILABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XHC_FIBERS_AVAILABLE 0
#else
#define XHC_FIBERS_AVAILABLE 1
#endif
#else
#define XHC_FIBERS_AVAILABLE 1
#endif

#if XHC_FIBERS_AVAILABLE
#if defined(__SANITIZE_THREAD__)
#define XHC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XHC_TSAN_FIBERS 1
#endif
#endif
#endif
#ifndef XHC_TSAN_FIBERS
#define XHC_TSAN_FIBERS 0
#endif

#if XHC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>

#include <cstdio>
#endif

#if XHC_FIBERS_AVAILABLE

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <exception>
#include <vector>

#if defined(__x86_64__)
#define XHC_FIBER_ASM 1
#else
#define XHC_FIBER_ASM 0
#include <ucontext.h>
#endif

#if XHC_FIBER_ASM
// xhc_fiber_switch(save_sp, load_sp): pushes the System V callee-saved
// registers, parks the current stack pointer in *save_sp, adopts load_sp,
// restores the saved registers of the target fiber and returns on its
// stack. A freshly-created fiber's frame is laid out so this "return"
// lands in xhc_fiber_entry (see make_fiber).
asm(R"(
.text
.globl xhc_fiber_switch
.hidden xhc_fiber_switch
.type xhc_fiber_switch, @function
xhc_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
.size xhc_fiber_switch, .-xhc_fiber_switch
)");
extern "C" void xhc_fiber_switch(void** save_sp, void* load_sp);
#endif

namespace xhc::sim {

namespace {

using detail::SchedState;
using detail::Status;

constexpr std::size_t kFiberStackBytes = 1u << 20;  // 1 MiB, lazily paged

/// Thread-local cache of fiber stack mappings (guard page included). Bench
/// sweeps create one scheduler per simulation point, and mapping 160 fresh
/// stacks per run means an mmap/munmap pair plus a cold page-fault per
/// touched page, every run — measurably more kernel time than the
/// simulation itself. Reused mappings keep their warm pages and their
/// PROT_NONE guard. Thread-local so parallel sweep workers never contend;
/// each host thread's cache is unmapped when the thread exits.
class StackPool {
 public:
  ~StackPool() {
    for (char* m : free_) ::munmap(m, map_bytes_);
  }

  /// Returns the mmap base: [base, base+page) is the guard page, the stack
  /// is the kFiberStackBytes above it.
  char* acquire() {
    if (!free_.empty()) {
      char* m = free_.back();
      free_.pop_back();
      return m;
    }
    void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    XHC_CHECK(mem != MAP_FAILED, "fiber stack mmap failed");
    ::mprotect(mem, page_, PROT_NONE);
    return static_cast<char*>(mem);
  }

  void release(char* m) {
    if (free_.size() >= kMaxCached) {
      ::munmap(m, map_bytes_);
      return;
    }
    free_.push_back(m);
  }

  std::size_t page() const { return page_; }

 private:
  // Covers the largest paper system (160 ranks) with headroom; extra
  // stacks beyond this are returned to the kernel. Under TSan the cache is
  // disabled: a reused stack would carry the dead fiber's shadow state and
  // report phantom races against the new tenant, while munmap/mmap resets
  // the shadow (and TSan runs are not wall-clock sensitive anyway).
  static constexpr std::size_t kMaxCached = XHC_TSAN_FIBERS ? 0 : 192;

  const std::size_t page_ = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t map_bytes_ = kFiberStackBytes + page_;
  std::vector<char*> free_;
};

class FiberScheduler;
thread_local FiberScheduler* tls_current_sched = nullptr;
thread_local StackPool tls_stack_pool;

class FiberScheduler final : public VirtualScheduler {
 public:
  FiberScheduler(int n, double epoch) : state_(n, epoch) {}

  ~FiberScheduler() override { release_stacks(); }

  void run(const std::function<void(int)>& body) override {
    XHC_CHECK(body_ == nullptr, "scheduler run() re-entered");
    body_ = &body;
    fibers_.resize(static_cast<std::size_t>(state_.n()));
    for (int r = 0; r < state_.n(); ++r) make_fiber(r);
    for (int r = 0; r < state_.n(); ++r) state_.attach(r);

    // Nested simulations (a rank body driving another SimMachine) stack
    // fine: the inner scheduler's "main" context is the outer fiber.
    FiberScheduler* const prev = tls_current_sched;
    tls_current_sched = this;
    current_ = state_.begin_first();
#if XHC_TSAN_FIBERS
    // The calling context (a host thread, or an outer fiber for nested
    // simulations) is itself a TSan fiber; remember it so the terminal
    // switch in fiber_main can announce the way back.
    main_tsan_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(fibers_[idx(current_)].tsan, 0);
#endif
#if XHC_FIBER_ASM
    xhc_fiber_switch(&main_sp_, fibers_[idx(current_)].sp);
#else
    swapcontext(&main_uc_, &fibers_[idx(current_)].uc);
#endif
    tls_current_sched = prev;

    body_ = nullptr;
    release_stacks();
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  // Single host thread: no locks anywhere on the rank-side hot path.
  double now(int r) override { return state_.rank(r).vtime; }

  void advance(int r, double dt) override {
    XHC_REQUIRE(dt >= 0.0, "cannot advance time backwards (dt=", dt, ")");
    state_.rank(r).vtime += dt;
    const int next = state_.yield_point(r);
    if (next != r) switch_from_to(r, next);
  }

  void lift(int r, double t) override {
    detail::RankState& self = state_.rank(r);
    self.vtime = std::max(self.vtime, t);
    const int next = state_.yield_point(r);
    if (next != r) switch_from_to(r, next);
  }

  double wait_until_raw(int r, const void* channel, PredFn fn,
                        void* ctx) override {
    detail::RankState& self = state_.rank(r);
    while (true) {
      if (const auto resume = fn(ctx)) {
        self.vtime = std::max(self.vtime, *resume);
        const int next = state_.yield_point(r);
        if (next != r) switch_from_to(r, next);
        return self.vtime;
      }
      const int next = state_.block(r, channel, fn, ctx);
      if (next == SchedState::kDeadlock) {
        throw util::Error(state_.describe());
      }
      switch_from_to(r, next);
    }
  }

  void notify(const void* channel) override { state_.notify(channel); }

  void barrier(int r, double extra_cost) override {
    const auto res = state_.barrier_arrive(r, extra_cost);
    if (!res.blocked) {
      if (res.next != r) switch_from_to(r, res.next);
      return;
    }
    if (res.next == SchedState::kDeadlock) {
      throw util::Error(state_.describe());
    }
    switch_from_to(r, res.next);
    // Resumed: vtime already lifted to the barrier release time.
  }

  void abort_all() override { aborted_ = true; }

  void set_channel_namer(
      std::function<std::string(const void*)> namer) override {
    state_.set_channel_namer(std::move(namer));
  }

  void set_pick_hook(PickHook hook) override {
    state_.set_pick_hook(std::move(hook));
  }

  int n_ranks() const noexcept override { return state_.n(); }
  SimBackend backend() const noexcept override { return SimBackend::kFiber; }

  /// Body of every fiber; runs on the fiber's own stack and never returns.
  [[noreturn]] void fiber_main() {
    const int r = current_;
    try {
      check_abort();
      (*body_)(r);
    } catch (...) {
      record_error(std::current_exception());
      aborted_ = true;
    }
    const int next = pick_after_finish(r);
    if (next == SchedState::kAllDone) {
#if XHC_TSAN_FIBERS
      __tsan_switch_to_fiber(main_tsan_, 0);
#endif
#if XHC_FIBER_ASM
      xhc_fiber_switch(&scratch_sp_, main_sp_);
#else
      setcontext(&main_uc_);
#endif
    } else {
      current_ = next;
#if XHC_TSAN_FIBERS
      __tsan_switch_to_fiber(fibers_[idx(next)].tsan, 0);
#endif
#if XHC_FIBER_ASM
      xhc_fiber_switch(&scratch_sp_, fibers_[idx(next)].sp);
#else
      setcontext(&fibers_[idx(next)].uc);
#endif
    }
    __builtin_unreachable();  // a Done fiber is never resumed
  }

 private:
  struct Fiber {
#if XHC_FIBER_ASM
    void* sp = nullptr;  ///< saved stack pointer while suspended
#else
    ucontext_t uc;
#endif
    char* map = nullptr;  ///< mmap base (guard page + stack), pool-owned
#if XHC_TSAN_FIBERS
    void* tsan = nullptr;  ///< TSan fiber context for this rank
#endif
  };

  static std::size_t idx(int r) { return static_cast<std::size_t>(r); }

  void make_fiber(int r) {
    Fiber& f = fibers_[idx(r)];
    // Guard page at the low end: stacks grow down into it on overflow.
    f.map = tls_stack_pool.acquire();
#if XHC_TSAN_FIBERS
    f.tsan = __tsan_create_fiber(0);
    char fiber_name[32];
    std::snprintf(fiber_name, sizeof(fiber_name), "sim-rank-%d", r);
    __tsan_set_fiber_name(f.tsan, fiber_name);
#endif
    char* const stack_lo = f.map + tls_stack_pool.page();
#if XHC_FIBER_ASM
    // Initial frame, from the 16-aligned stack top downwards:
    //   [sp+48] entry address — consumed by xhc_fiber_switch's ret
    //   [sp+0..47] six zeroed callee-saved register slots
    // After the pops and the ret, rsp ≡ 8 (mod 16): the ABI state at a
    // normal function entry, so xhc_fiber_entry can be ordinary C++.
    auto top = reinterpret_cast<std::uintptr_t>(stack_lo + kFiberStackBytes);
    top &= ~static_cast<std::uintptr_t>(15);
    void** frame = reinterpret_cast<void**>(top - 64);
    for (int i = 0; i < 6; ++i) frame[i] = nullptr;
    frame[6] = reinterpret_cast<void*>(&fiber_entry);
    f.sp = frame;
#else
    XHC_CHECK(getcontext(&f.uc) == 0, "getcontext failed");
    f.uc.uc_stack.ss_sp = stack_lo;
    f.uc.uc_stack.ss_size = kFiberStackBytes;
    f.uc.uc_link = nullptr;  // fibers exit via explicit setcontext
    makecontext(&f.uc, reinterpret_cast<void (*)()>(&fiber_entry), 0);
#endif
  }

  void release_stacks() {
    // Runs on the main context, after every fiber has finished or unwound —
    // never while a fiber is current.
    for (Fiber& f : fibers_) {
      if (f.map != nullptr) tls_stack_pool.release(f.map);
      f.map = nullptr;
#if XHC_TSAN_FIBERS
      if (f.tsan != nullptr) __tsan_destroy_fiber(f.tsan);
      f.tsan = nullptr;
#endif
    }
    fibers_.clear();
  }

  static void fiber_entry() { tls_current_sched->fiber_main(); }

  /// Suspends rank `self` and resumes `next`; throws on return if the
  /// simulation was aborted while this rank slept.
  void switch_from_to(int self, int next) {
    current_ = next;
#if XHC_TSAN_FIBERS
    __tsan_switch_to_fiber(fibers_[idx(next)].tsan, 0);
#endif
#if XHC_FIBER_ASM
    xhc_fiber_switch(&fibers_[idx(self)].sp, fibers_[idx(next)].sp);
#else
    swapcontext(&fibers_[idx(self)].uc, &fibers_[idx(next)].uc);
#endif
    check_abort();
  }

  void check_abort() const {
    if (aborted_) {
      throw util::Error("simulation aborted (a rank threw an exception)");
    }
  }

  /// Rank r is finishing (normally or mid-unwind). Returns the next rank
  /// to resume, or kAllDone when the run is complete. Never throws: a
  /// deadlock discovered here is recorded and converted into an abort
  /// unwind of the remaining parked fibers.
  int pick_after_finish(int r) {
    if (!aborted_) {
      const int next = state_.finish(r);
      if (next != SchedState::kDeadlock) return next;
      record_error(
          std::make_exception_ptr(util::Error(state_.describe())));
      aborted_ = true;
    } else {
      state_.mark_done(r);
    }
    // Abort unwind: resume parked fibers lowest-rank-first so each can
    // throw at its suspension point and run its destructors.
    for (int i = 0; i < state_.n(); ++i) {
      if (state_.rank(i).status != Status::kDone) return i;
    }
    return SchedState::kAllDone;
  }

  void record_error(std::exception_ptr e) {
    if (!first_error_) first_error_ = std::move(e);
  }

  SchedState state_;
  std::vector<Fiber> fibers_;
  const std::function<void(int)>* body_ = nullptr;
  int current_ = -1;
  bool aborted_ = false;
  std::exception_ptr first_error_;
#if XHC_FIBER_ASM
  void* main_sp_ = nullptr;
  void* scratch_sp_ = nullptr;  ///< discard slot for terminal switches
#else
  ucontext_t main_uc_;
#endif
#if XHC_TSAN_FIBERS
  void* main_tsan_ = nullptr;  ///< TSan context of the run() caller
#endif
};

}  // namespace

bool fiber_backend_available() noexcept { return true; }

std::unique_ptr<VirtualScheduler> make_fiber_scheduler(int n, double epoch) {
  return std::make_unique<FiberScheduler>(n, epoch);
}

}  // namespace xhc::sim

#else  // !XHC_FIBERS_AVAILABLE (AddressSanitizer build)

#include <memory>

namespace xhc::sim {

std::unique_ptr<VirtualScheduler> make_thread_scheduler(int n, double epoch);

bool fiber_backend_available() noexcept { return false; }

std::unique_ptr<VirtualScheduler> make_fiber_scheduler(int n, double epoch) {
  // ASan cannot follow custom stack switches; the thread backend exhibits
  // identical virtual time, so fall back silently. (TSan builds keep the
  // fiber backend — see the annotation block above.)
  return make_thread_scheduler(n, epoch);
}

}  // namespace xhc::sim

#endif  // XHC_FIBERS_AVAILABLE
