// Buffer residency model (paper §V-A, Fig. 7).
//
// Tracks, per registered allocation, a version number (bumped whenever the
// buffer is written) and which caches hold the current version. A read is
// served from the nearest holder: the reader's own LLC group, the system-
// level cache, the producer's LLC group, or the buffer's home NUMA memory.
// This is what makes the cache-defeating `_mb` microbenchmark variants
// measurably different from the stock OSU ones, exactly as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sim/coh_stats.h"
#include "sim/params.h"
#include "topo/topology.h"

namespace xhc::sim {

/// Where a read is served from, in the order the model prefers them.
enum class ServeKind : std::uint8_t {
  kLocalLlc,     ///< current version resident in the reader's LLC group
  kSlc,          ///< current version resident in the system-level cache
  kProducerLlc,  ///< current version resident in the producer's LLC group
  kMemory,       ///< home NUMA memory
};

const char* to_string(ServeKind k);

struct ServeInfo {
  ServeKind kind = ServeKind::kMemory;
  int src_numa = 0;    ///< NUMA node the data is served from
  int src_llc = -1;    ///< LLC group serving (kLocalLlc / kProducerLlc)
  topo::Distance distance = topo::Distance::kIntraNuma;
};

class CacheModel {
 public:
  CacheModel(const topo::Topology* topo, const SimParams* params);

  /// Registers an allocation; `home_numa` is its first-touch NUMA node.
  void add_block(std::uint64_t id, std::size_t bytes, int home_numa);
  void remove_block(std::uint64_t id);

  /// Buffer `id` (or a part of it) was written by `writer_core`:
  /// bump version, invalidate residency, record the producer.
  void on_write(std::uint64_t id, int writer_core);

  /// Resolves where a read of `bytes` bytes of buffer `id` by `reader_core`
  /// is served from, then updates residency (the reader's LLC group / the
  /// SLC now holds the current version, if the buffer fits).
  ServeInfo on_read(std::uint64_t id, int reader_core, std::size_t bytes);

  /// ServeInfo for an address that is not a registered block: modeled as
  /// reader-local memory.
  ServeInfo local_read(int reader_core) const;

  std::uint64_t version(std::uint64_t id) const;
  bool resident_in_llc(std::uint64_t id, int llc) const;

  /// Attaches the coherence-event accumulator (may be null). Not owned.
  /// Purely observational: ServeKind resolution and residency updates are
  /// identical whether or not stats are recorded.
  void set_stats(CohStats* stats) noexcept { stats_ = stats; }

  void reset();

 private:
  struct Block {
    std::size_t bytes = 0;
    int home_numa = 0;
    std::uint64_t version = 0;
    int producer_llc = -1;   ///< LLC group of the last writer (-1: none)
    bool in_slc = false;     ///< current version resident in the SLC
    std::set<int> resident_llcs;  ///< LLC groups holding the current version
    /// Bytes of the current version pulled toward each LLC group (or the
    /// SLC, key -1). A cache becomes resident only once a block's worth of
    /// data has actually flowed there — chunked pulls are priced at the
    /// source until then (a first pull of a 1 MB buffer is not free after
    /// its first 16 KB chunk).
    std::map<int, std::size_t> read_progress;
  };

  bool fits_llc(const Block& b) const noexcept;
  bool fits_slc(const Block& b) const noexcept;
  /// Any core belonging to LLC group `llc`.
  int llc_rep_core(int llc) const;
  /// Distance class from `reader_core` to memory homed on `numa`.
  topo::Distance numa_distance(int reader_core, int numa) const;

  bool tracking() const noexcept {
    return stats_ != nullptr && stats_->enabled();
  }

  const topo::Topology* topo_;
  const SimParams* params_;
  CohStats* stats_ = nullptr;
  std::map<std::uint64_t, Block> blocks_;
};

}  // namespace xhc::sim
