// Cache-line service model for control flags (paper §III-E, Fig. 4, Fig. 10).
//
// Models a MESI-like life cycle per 64-byte line:
//  * a store makes the writer's core the owner and invalidates all sharers;
//  * the first read after a store is serviced by the owner core — concurrent
//    first-reads of lines owned by one core serialize on that core's port
//    (this is the fan-out hot spot of flat trees);
//  * on shared-LLC machines the line then lives in the provider's LLC group:
//    group peers hit locally, other groups fetch via the LLC port;
//  * on SLC machines the line lives at a single SLC location: every core's
//    fetch serializes on that line's bank — there is no peer-assist, which is
//    why flat fan-out collapses on ARM-N1 (paper §V-D1);
//  * atomic RMW always transfers exclusive ownership: N concurrent RMWs cost
//    ~N ownership transfers (Fig. 4's 23x).
//
// Operations take the flag's address (the line id is derived internally) so
// an attached CohStats can attribute events back to registered flag names.
// Stats recording is purely observational: completion times are identical
// whether or not a CohStats is attached/enabled.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "sim/coh_stats.h"
#include "sim/params.h"
#include "topo/topology.h"

namespace xhc::sim {

class LineModel {
 public:
  LineModel(const topo::Topology* topo, const SimParams* params);

  /// A read of the line holding `addr` by `core` issued at time `t`; returns
  /// the completion time (>= t) and updates sharer state. `pipelined` models
  /// a read whose value is already available (a scan over set flags): the
  /// miss latency overlaps with neighbouring reads (memory-level
  /// parallelism) and only a quarter of it is exposed; occupancy /
  /// serialization costs still apply.
  double read(const void* addr, int core, double t, bool pipelined = false);

  /// A store by `core` at time `t`; returns completion time.
  double write(const void* addr, int core, double t);

  /// An atomic read-modify-write by `core` at `t`; returns completion time.
  double rmw(const void* addr, int core, double t);

  /// Attaches the coherence-event accumulator (may be null). Not owned.
  void set_stats(CohStats* stats) noexcept { stats_ = stats; }

  /// Monotone count of stores+RMWs to `addr`'s line. SimMachine's wait path
  /// differences it across a blocked window to count the invalidation
  /// re-fetches a real spinner would have paid (the false-sharing signal of
  /// the packed Fig. 10 layout).
  std::uint64_t store_seq(const void* addr) const noexcept;
  /// Current owning core of `addr`'s line (-1 when never written).
  int owner_of(const void* addr) const noexcept;

  void reset();

 private:
  struct Line {
    int owner_core = -1;        ///< last writer
    bool dirty = false;         ///< no shared-cache copy yet
    bool in_slc = false;
    std::set<int> sharer_llcs;  ///< LLC groups holding the line
    double line_free = 0.0;     ///< serialization point for this line's
                                ///< fetches (SLC bank / providing LLC)
    std::uint64_t store_seq = 0;  ///< stores+RMWs so far (accounting only)
  };

  Line& line(std::uintptr_t id);
  /// Serialization queue of a provider core's port (first reads of dirty
  /// lines owned by that core, across *all* lines — Fig. 10 separated-flags).
  double& core_port(int core);
  bool tracking() const noexcept {
    return stats_ != nullptr && stats_->enabled();
  }

  const topo::Topology* topo_;
  const SimParams* params_;
  CohStats* stats_ = nullptr;
  std::map<std::uintptr_t, Line> lines_;
  std::map<int, double> core_port_free_;
};

}  // namespace xhc::sim
