#include "sim/params.h"

namespace xhc::sim {

namespace {

constexpr double kNs = 1e-9;
constexpr double kUs = 1e-6;
constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
constexpr std::size_t kMB = 1024u * 1024u;

}  // namespace

const LinkCost& SimParams::path(topo::Distance d) const noexcept {
  switch (d) {
    case topo::Distance::kSelf:
    case topo::Distance::kLlcLocal:
      return llc_local;
    case topo::Distance::kIntraNuma:
      return intra_numa;
    case topo::Distance::kCrossNuma:
      return cross_numa;
    case topo::Distance::kCrossSocket:
      return cross_socket;
  }
  return intra_numa;
}

double SimParams::line_lat(topo::Distance d) const noexcept {
  switch (d) {
    case topo::Distance::kSelf:
      return line_hit;
    case topo::Distance::kLlcLocal:
      return line_lat_llc;
    case topo::Distance::kIntraNuma:
      return line_lat_numa;
    case topo::Distance::kCrossNuma:
      return line_lat_xnuma;
    case topo::Distance::kCrossSocket:
      return line_lat_xsocket;
  }
  return line_lat_numa;
}

SimParams epyc_like_params() {
  SimParams p;
  // Fig. 1a relationships: cache-local < intra-numa < cross-numa <<
  // cross-socket for both latency and bandwidth.
  p.llc_local = {40 * kNs, 34.0 * kGB};
  p.slc = {70 * kNs, 28.0 * kGB};  // unused on Epyc (no SLC)
  p.intra_numa = {90 * kNs, 17.0 * kGB};
  p.cross_numa = {140 * kNs, 11.5 * kGB};
  p.cross_socket = {290 * kNs, 7.2 * kGB};

  p.llc_port_bw = 44.0 * kGB;
  p.numa_mem_bw = 26.0 * kGB;
  p.socket_fabric_bw = 52.0 * kGB;
  p.xsocket_bw = 30.0 * kGB;
  p.slc_bw = 0.0;

  p.llc_bytes = 8 * kMB;  // one Zen CCX L3
  p.slc_bytes = 0;

  p.line_lat_llc = 28 * kNs;
  p.line_lat_numa = 95 * kNs;
  p.line_lat_xnuma = 150 * kNs;
  p.line_lat_xsocket = 310 * kNs;
  p.line_hit = 9 * kNs;
  p.line_service = 32 * kNs;
  p.core_port_service = 110 * kNs;
  p.rmw_service = 130 * kNs;
  p.store_cost = 5 * kNs;
  p.inval_cost = 26 * kNs;

  p.copy_base = 55 * kNs;
  p.reduce_bw_factor = 1.3;
  p.barrier_cost = 0.3 * kUs;
  return p;
}

SimParams armn1_params() {
  SimParams p = epyc_like_params();
  // ARM-N1 (Ampere Altra): private L2 per core, no shared LLC; a physically
  // tagged system-level cache behind the CMN-600 mesh. Intra- vs cross-NUMA
  // latency is nearly identical (paper §III-A: "this elevation is marginal").
  p.llc_local = {50 * kNs, 30.0 * kGB};  // only ever used for self-distance
  p.slc = {80 * kNs, 24.0 * kGB};
  p.intra_numa = {105 * kNs, 21.0 * kGB};
  p.cross_numa = {115 * kNs, 19.5 * kGB};
  p.cross_socket = {320 * kNs, 8.0 * kGB};

  p.llc_port_bw = 0.0;  // no shared LLC groups
  p.numa_mem_bw = 28.0 * kGB;
  p.socket_fabric_bw = 70.0 * kGB;
  p.xsocket_bw = 32.0 * kGB;
  p.slc_bw = 110.0 * kGB;

  p.llc_bytes = 0;
  p.slc_bytes = 32 * kMB;

  p.line_lat_llc = 30 * kNs;
  p.line_lat_numa = 110 * kNs;
  p.line_lat_xnuma = 125 * kNs;
  p.line_lat_xsocket = 340 * kNs;
  p.line_hit = 10 * kNs;
  p.line_service = 24 * kNs;
  p.core_port_service = 120 * kNs;
  p.rmw_service = 160 * kNs;
  p.store_cost = 6 * kNs;
  p.inval_cost = 30 * kNs;

  p.copy_base = 60 * kNs;
  p.reduce_bw_factor = 1.3;
  return p;
}

SimParams params_for(const topo::Topology& topo) {
  if (topo.name() == "armn1" || !topo.has_shared_llc()) return armn1_params();
  return epyc_like_params();
}

}  // namespace xhc::sim
