// Congestion ledger: bandwidth-shared resources (paper §III-A, Fig. 1b).
//
// Every bulk transfer books the resources along its path (source LLC port or
// NUMA memory channel, socket fabric, inter-socket link, SLC). A transfer's
// effective bandwidth is the minimum fair share across its resources at its
// start time: cap / (1 + transfers already in flight). Fan-in and fan-out
// pile-ups emerge from the ledger rather than being modeled explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace xhc::sim {

/// Kinds of bandwidth resources in the node model.
enum class ResKind : std::uint8_t {
  kLlcPort,       ///< per-LLC-group read port (index = llc id)
  kNumaChannel,   ///< per-NUMA memory channel (index = numa id)
  kSocketFabric,  ///< per-socket mesh (index = socket id)
  kXSocketLink,   ///< inter-socket link (index = 0)
  kSlc,           ///< system-level cache aggregate (index = 0)
};

struct ResId {
  ResKind kind;
  int index;

  friend bool operator<(const ResId& a, const ResId& b) noexcept {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  }
};

/// Tracks in-flight transfers per resource and computes fair shares.
/// Deterministic as long as bookings arrive in non-decreasing start time —
/// which the virtual-time scheduler guarantees.
class ResourceLedger {
 public:
  /// Capacity (bytes/s) of `res`; must be set before use.
  void set_capacity(ResId res, double bytes_per_sec);

  /// Fair bandwidth share `cap / (1 + active)` for a transfer starting at
  /// `t` on `res`. Transfers whose end time is <= t are expired first.
  double share(ResId res, double t);

  /// Registers a transfer occupying `res` during [t_start, t_end).
  void book(ResId res, double t_start, double t_end);

  /// Number of in-flight transfers on `res` at time `t` (test hook).
  int active(ResId res, double t);

  void clear_in_flight();

 private:
  struct State {
    double capacity = 0.0;
    // End times of in-flight transfers; kept sorted ascending.
    std::vector<double> ends;
  };
  State& state(ResId res);
  static void expire(State& s, double t);

  std::map<ResId, State> states_;
};

}  // namespace xhc::sim
