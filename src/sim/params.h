// Simulator cost-model parameters.
//
// One SimParams instance prices all data movement and synchronization on a
// simulated node. The defaults for the three paper systems (Table I) are
// chosen to reproduce the *relationships* the paper measures directly on
// hardware (Fig. 1a domain costs, Fig. 1b congestion, Fig. 4 atomics, §V-D1
// LLC vs SLC behaviour) — not any particular absolute number.
#pragma once

#include <cstddef>
#include <string>

#include "topo/topology.h"

namespace xhc::sim {

/// Latency + bandwidth of one kind of data path.
struct LinkCost {
  double lat = 0.0;  ///< seconds
  double bw = 1.0;   ///< bytes / second
};

struct SimParams {
  // --- bulk copy paths, by effective source location --------------------
  LinkCost llc_local;     ///< source resident in the reader's own LLC group
  LinkCost slc;           ///< source resident in the system-level cache (ARM)
  LinkCost intra_numa;    ///< source homed in the reader's NUMA node
  LinkCost cross_numa;    ///< other NUMA node, same socket
  LinkCost cross_socket;  ///< other socket

  // --- congestion resource capacities (bytes/second) --------------------
  double llc_port_bw = 0.0;    ///< per-LLC-group read port
  double numa_mem_bw = 0.0;    ///< per-NUMA-node memory channel
  double socket_fabric_bw = 0.0;  ///< per-socket internal mesh
  double xsocket_bw = 0.0;     ///< inter-socket link
  double slc_bw = 0.0;         ///< total SLC bandwidth (0 on LLC machines)

  // --- cache capacities ---------------------------------------------------
  std::size_t llc_bytes = 0;  ///< per LLC group (0 = no shared LLC)
  std::size_t slc_bytes = 0;  ///< system-level cache (0 = none)

  // --- cache-line (flag) model -------------------------------------------
  double line_lat_llc = 0.0;      ///< fetch within one LLC group
  double line_lat_numa = 0.0;     ///< fetch within one NUMA node / from SLC
  double line_lat_xnuma = 0.0;    ///< fetch across NUMA nodes
  double line_lat_xsocket = 0.0;  ///< fetch across sockets
  double line_hit = 0.0;       ///< read of a line already held locally
  double line_service = 0.0;   ///< shared-cache occupancy per line fetch
  double core_port_service = 0.0;  ///< owner-core occupancy when servicing a
                                   ///< dirty line (first read after a store)
  double rmw_service = 0.0;    ///< ownership-transfer cost per atomic RMW
  double store_cost = 0.0;     ///< flag store
  double inval_cost = 0.0;     ///< extra store cost when sharers must be
                               ///< invalidated

  // --- software constants -------------------------------------------------
  double copy_base = 0.0;        ///< fixed per-copy software cost
  double reduce_bw_factor = 1.0; ///< reduce throughput = copy / factor
  double barrier_cost = 0.0;     ///< harness barrier release cost

  /// Returns the copy LinkCost for a source at the given distance.
  const LinkCost& path(topo::Distance d) const noexcept;
  /// Returns the line-fetch latency for the given distance.
  double line_lat(topo::Distance d) const noexcept;
};

/// Cost model for one of the paper's evaluation systems; dispatches on the
/// topology name ("epyc1p", "epyc2p", "armn1"); other names get the generic
/// LLC-style model (or SLC-style when the topology has no shared LLC).
SimParams params_for(const topo::Topology& topo);

/// Generic models, exposed for tests.
SimParams epyc_like_params();
SimParams armn1_params();

}  // namespace xhc::sim
