// Exploration instrumentation tap for the simulated machine.
//
// The interleaving explorer (src/check/) needs to know, per scheduling
// step, which shared objects the running rank touched: flag operations
// (with their values, for schedule-conformance checking) and payload byte
// ranges (for the sleep-set independence relation). SimMachine forwards
// every SimCtx flag/data operation to the installed sink; a null sink —
// the default — costs one pointer test per operation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xhc::mach {
struct Flag;
}

namespace xhc::sim {

class AccessSink {
 public:
  enum class FlagOp : unsigned char {
    kStore,      ///< flag_store; value = stored value
    kRmw,        ///< fetch_add; value = resulting value
    kRead,       ///< flag_read; value = observed value
    kWaitEnter,  ///< flag_wait_ge entry; value = threshold
  };

  virtual ~AccessSink() = default;

  /// One flag operation by `rank` on `f`. Called on the simulated rank's
  /// context while it holds the scheduler token, so implementations need
  /// no locking under the fiber backend; under the threads backend calls
  /// are still serialized by the token but migrate across host threads.
  virtual void on_flag(int rank, const mach::Flag* f, FlagOp op,
                       std::uint64_t value) = 0;

  /// One payload access by `rank` over [p, p + n). Reduce operands are
  /// reported as a read of the source and a write of the destination.
  virtual void on_data(int rank, const void* p, std::size_t n,
                       bool write) = 0;
};

}  // namespace xhc::sim
