#include "sim/resources.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::sim {

void ResourceLedger::set_capacity(ResId res, double bytes_per_sec) {
  XHC_REQUIRE(bytes_per_sec > 0.0, "capacity must be positive");
  states_[res].capacity = bytes_per_sec;
}

ResourceLedger::State& ResourceLedger::state(ResId res) {
  auto it = states_.find(res);
  XHC_CHECK(it != states_.end(), "resource has no capacity set (kind=",
            static_cast<int>(res.kind), " index=", res.index, ")");
  return it->second;
}

void ResourceLedger::expire(State& s, double t) {
  // ends is sorted; drop the prefix of finished transfers.
  auto it = std::upper_bound(s.ends.begin(), s.ends.end(), t);
  s.ends.erase(s.ends.begin(), it);
}

double ResourceLedger::share(ResId res, double t) {
  State& s = state(res);
  expire(s, t);
  return s.capacity / (1.0 + static_cast<double>(s.ends.size()));
}

void ResourceLedger::book(ResId res, double t_start, double t_end) {
  XHC_REQUIRE(t_end >= t_start, "negative transfer duration");
  State& s = state(res);
  expire(s, t_start);
  s.ends.insert(std::upper_bound(s.ends.begin(), s.ends.end(), t_end), t_end);
}

int ResourceLedger::active(ResId res, double t) {
  State& s = state(res);
  expire(s, t);
  return static_cast<int>(s.ends.size());
}

void ResourceLedger::clear_in_flight() {
  for (auto& [id, s] : states_) s.ends.clear();
}

}  // namespace xhc::sim
