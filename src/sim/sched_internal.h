// Shared state machine of the virtual-time scheduler backends.
//
// SchedState holds everything that determines the simulation's event order:
// per-rank clocks and statuses, the ready min-heap, the channel→waiters
// map, and the barrier accumulator. It performs no blocking and no locking
// — each backend wraps it in its own handoff mechanics (fiber stack
// switches vs mutex+condvars) — so both backends make exactly the same
// scheduling decisions and produce bit-identical virtual timestamps.
//
// Complexity: the ready set is an explicit binary min-heap keyed by
// (vtime, rank) — push/pop O(log n), peek O(1) — and notify() touches only
// the ranks actually blocked on the channel via an unordered_map of waiter
// lists. The previous implementation scanned all n ranks for both.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.h"

namespace xhc::sim::detail {

enum class Status : unsigned char {
  kNotStarted,
  kReady,
  kRunning,
  kBlocked,
  kDone,
};

struct RankState {
  double vtime = 0.0;
  Status status = Status::kNotStarted;
  const void* channel = nullptr;
  VirtualScheduler::PredFn pred_fn = nullptr;  ///< non-owning; caller frame
  void* pred_ctx = nullptr;                    ///< outlives the suspension
  bool dirty = false;      ///< channel notified since last predicate check
  int waiter_idx = -1;     ///< position in the channel's waiter list
};

/// Binary min-heap of ready ranks keyed by (vtime, rank). Keys are unique
/// (rank breaks ties), so the minimum — and therefore the schedule — is
/// total-order deterministic.
class ReadyHeap {
 public:
  void reserve(std::size_t n) { h_.reserve(n); }
  bool empty() const noexcept { return h_.empty(); }
  std::size_t size() const noexcept { return h_.size(); }

  void push(double vtime, int rank) {
    h_.push_back({vtime, rank});
    std::size_t i = h_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(h_[i], h_[parent])) break;
      std::swap(h_[i], h_[parent]);
      i = parent;
    }
  }

  /// (vtime, rank) of the minimum; heap must be non-empty.
  double top_vtime() const noexcept { return h_[0].vtime; }
  int top_rank() const noexcept { return h_[0].rank; }

  /// True when key (vtime, rank) precedes-or-equals the heap minimum,
  /// i.e. a running rank with that key may keep the token.
  bool at_most_top(double vtime, int rank) const noexcept {
    if (h_.empty()) return true;
    return vtime < h_[0].vtime ||
           (vtime == h_[0].vtime && rank < h_[0].rank);
  }

  int pop() {
    const int rank = h_[0].rank;
    h_[0] = h_.back();
    h_.pop_back();
    sift_down(0);
    return rank;
  }

  /// Removes a specific rank, wherever it sits (linear scan + sift).
  /// Only the exploration pick hook uses this — never the default path —
  /// and only on tiny topologies, so O(n) is fine.
  void extract(int rank) {
    std::size_t i = 0;
    while (i < h_.size() && h_[i].rank != rank) ++i;
    if (i == h_.size()) return;
    h_[i] = h_.back();
    h_.pop_back();
    if (i == h_.size()) return;
    // Restore heap order from i: the replacement may violate either way.
    std::size_t j = i;
    while (j > 0) {
      const std::size_t parent = (j - 1) / 2;
      if (!less(h_[j], h_[parent])) break;
      std::swap(h_[j], h_[parent]);
      j = parent;
    }
    if (j == i) sift_down(i);
  }

  /// Appends every ready rank to `out` (heap order, not sorted).
  void ranks_into(std::vector<int>& out) const {
    for (const Entry& e : h_) out.push_back(e.rank);
  }

 private:
  struct Entry {
    double vtime;
    int rank;
  };
  static bool less(const Entry& a, const Entry& b) noexcept {
    return a.vtime < b.vtime || (a.vtime == b.vtime && a.rank < b.rank);
  }
  void sift_down(std::size_t i) {
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t m = i;
      if (l < h_.size() && less(h_[l], h_[m])) m = l;
      if (r < h_.size() && less(h_[r], h_[m])) m = r;
      if (m == i) break;
      std::swap(h_[i], h_[m]);
      i = m;
    }
  }
  std::vector<Entry> h_;
};

class SchedState {
 public:
  /// Returned by the pick methods when no rank is ready.
  static constexpr int kAllDone = -1;
  /// No rank is ready but not every rank is done: the caller must raise
  /// the deadlock report.
  static constexpr int kDeadlock = -2;

  SchedState(int n, double epoch) : ranks_(static_cast<std::size_t>(n)) {
    for (auto& r : ranks_) r.vtime = epoch;
    heap_.reserve(static_cast<std::size_t>(n));
    barrier_waiters_.reserve(static_cast<std::size_t>(n));
  }

  int n() const noexcept { return static_cast<int>(ranks_.size()); }
  RankState& rank(int r) { return ranks_[static_cast<std::size_t>(r)]; }
  const RankState& rank(int r) const {
    return ranks_[static_cast<std::size_t>(r)];
  }
  int n_done() const noexcept { return n_done_; }
  const void* barrier_channel() const noexcept { return &barrier_gen_; }

  /// NotStarted -> Ready. Returns true once every rank has attached (the
  /// token is granted only then, so the first runner is deterministic
  /// regardless of host thread start order).
  bool attach(int r) {
    RankState& self = rank(r);
    self.status = Status::kReady;
    heap_.push(self.vtime, r);
    return heap_.size() + static_cast<std::size_t>(n_done_) ==
           ranks_.size();
  }

  /// Installs the exploration hook (see VirtualScheduler::PickHook). Null
  /// — the default — leaves every decision to the minimal-(vtime, rank)
  /// policy, bit-identical to the unhooked engine.
  void set_pick_hook(VirtualScheduler::PickHook hook) {
    pick_hook_ = std::move(hook);
  }

  /// Pops the minimal ready rank and marks it Running.
  int begin_first() { return take_next(); }

  /// Scheduling point of a rank that stays runnable (advance / lift /
  /// post-wait resume): promotes notified waiters, then either keeps the
  /// token (returns r) or marks r Ready and returns the new minimum, which
  /// is marked Running.
  int yield_point(int r) {
    promote_dirty();
    RankState& self = rank(r);
    if (pick_hook_ && !heap_.empty()) {
      const int ch = consult_hook(r);
      if (ch >= 0) {
        if (ch == r) return r;
        self.status = Status::kReady;
        heap_.push(self.vtime, r);
        heap_.extract(ch);
        rank(ch).status = Status::kRunning;
        return ch;
      }
    }
    if (heap_.at_most_top(self.vtime, r)) return r;
    self.status = Status::kReady;
    heap_.push(self.vtime, r);
    const int next = heap_.pop();
    rank(next).status = Status::kRunning;
    return next;
  }

  /// Blocks r on (channel, pred) and picks the next rank to run. Returns a
  /// rank id or kDeadlock (never kAllDone — r itself is not done).
  int block(int r, const void* channel, VirtualScheduler::PredFn fn,
            void* ctx) {
    RankState& self = rank(r);
    self.status = Status::kBlocked;
    self.channel = channel;
    self.pred_fn = fn;
    self.pred_ctx = ctx;
    self.dirty = false;
    add_waiter(channel, r);
    promote_dirty();
    return pick_or_deadlock();
  }

  /// Done-bookkeeping without a pick: used while unwinding an aborted run.
  void mark_done(int r) {
    rank(r).status = Status::kDone;
    ++n_done_;
  }

  /// Marks r Done and picks the next rank. Returns a rank id, kAllDone, or
  /// kDeadlock.
  int finish(int r) {
    mark_done(r);
    promote_dirty();
    if (heap_.empty()) {
      return n_done_ == n() ? kAllDone : kDeadlock;
    }
    return take_next();
  }

  /// Marks every rank blocked on `channel` dirty (O(waiters)).
  void notify(const void* channel) {
    auto it = waiters_.find(channel);
    if (it == waiters_.end()) return;
    for (const int w : it->second) {
      if (!rank(w).dirty) {
        rank(w).dirty = true;
        dirty_.push_back(w);
      }
    }
  }

  struct BarrierResult {
    bool blocked;  ///< r parked; `next` is the rank to switch to
    int next;      ///< rank id, or kDeadlock when blocked with nobody ready
  };

  /// Barrier arrival of r: the last live arriver releases everyone at
  /// (max arrival + extra_cost) and then yields normally; earlier arrivers
  /// park on the internal barrier channel.
  BarrierResult barrier_arrive(int r, double extra_cost) {
    RankState& self = rank(r);
    barrier_max_time_ = std::max(barrier_max_time_, self.vtime);
    ++barrier_arrived_;
    const int live = n() - n_done_;
    if (barrier_arrived_ >= live) {
      const double release = barrier_max_time_ + extra_cost;
      barrier_arrived_ = 0;
      barrier_max_time_ = 0.0;
      ++barrier_gen_;
      for (const int w : barrier_waiters_) {
        RankState& ws = rank(w);
        ws.vtime = std::max(ws.vtime, release);
        ws.status = Status::kReady;
        ws.channel = nullptr;
        ws.dirty = false;
        heap_.push(ws.vtime, w);
      }
      barrier_waiters_.clear();
      self.vtime = std::max(self.vtime, release);
      return {false, yield_point(r)};
    }
    self.status = Status::kBlocked;
    self.channel = barrier_channel();
    self.dirty = false;
    barrier_waiters_.push_back(r);
    promote_dirty();
    return {true, pick_or_deadlock()};
  }

  /// Names wait channels in the deadlock report (the machine wires the
  /// verifier's flag registry in); empty result falls back to the address.
  void set_channel_namer(std::function<std::string(const void*)> namer) {
    namer_ = std::move(namer);
  }

  /// Human-readable dump of every rank's state, for the deadlock report.
  std::string describe() const {
    std::string os = "virtual-time deadlock; rank states:";
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
      const RankState& t = ranks_[i];
      os += " [" + std::to_string(i) + ":";
      switch (t.status) {
        case Status::kNotStarted:
          os += "unstarted";
          break;
        case Status::kReady:
          os += "ready";
          break;
        case Status::kRunning:
          os += "running";
          break;
        case Status::kBlocked: {
          std::string chan;
          if (t.channel == barrier_channel()) {
            chan = "barrier";
          } else {
            if (namer_) chan = namer_(t.channel);
            if (!chan.empty()) {
              chan = "'" + chan + "'";
            } else {
              char buf[32];
              std::snprintf(buf, sizeof buf, "%p", t.channel);
              chan = buf;
            }
          }
          os += "blocked@" + chan;
          break;
        }
        case Status::kDone:
          os += "done";
          break;
      }
      char tb[32];
      std::snprintf(tb, sizeof tb, "%g", t.vtime);
      os += std::string(" t=") + tb + "]";
    }
    return os;
  }

 private:
  int pick_or_deadlock() {
    if (heap_.empty()) return kDeadlock;
    return take_next();
  }

  /// Takes the next rank off the ready heap — the hook's choice when one is
  /// installed and answers with a rank, the minimum otherwise — and marks
  /// it Running. Heap must be non-empty.
  int take_next() {
    if (pick_hook_) {
      const int ch = consult_hook(-1);
      if (ch >= 0) {
        heap_.extract(ch);
        rank(ch).status = Status::kRunning;
        return ch;
      }
    }
    const int next = heap_.pop();
    rank(next).status = Status::kRunning;
    return next;
  }

  /// Presents the runnable candidates (ready heap plus `extra` when >= 0,
  /// ascending) to the hook. Returns the hook's choice, or -1 for "use the
  /// default policy" — which is also the answer for a choice that is not
  /// actually a candidate, so a buggy hook degrades to the deterministic
  /// schedule instead of corrupting the heap.
  int consult_hook(int extra) {
    cand_.clear();
    heap_.ranks_into(cand_);
    if (extra >= 0) cand_.push_back(extra);
    std::sort(cand_.begin(), cand_.end());
    const int ch = pick_hook_(cand_);
    if (ch < 0) return -1;
    for (const int c : cand_) {
      if (c == ch) return ch;
    }
    return -1;
  }

  /// Re-evaluates the predicates of notified blocked ranks; engaged ones
  /// become Ready at max(their clock, predicate resume time). Predicates
  /// are pure reads of simulation state, so the evaluation order cannot
  /// influence outcomes.
  void promote_dirty() {
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      const int w = dirty_[i];
      RankState& ws = rank(w);
      ws.dirty = false;
      if (ws.status != Status::kBlocked || ws.pred_fn == nullptr) continue;
      if (const auto resume = ws.pred_fn(ws.pred_ctx)) {
        ws.vtime = std::max(ws.vtime, *resume);
        ws.status = Status::kReady;
        remove_waiter(ws.channel, w);
        ws.channel = nullptr;
        ws.pred_fn = nullptr;
        ws.pred_ctx = nullptr;
        heap_.push(ws.vtime, w);
      }
    }
    dirty_.clear();
  }

  void add_waiter(const void* channel, int r) {
    auto& list = waiters_[channel];
    rank(r).waiter_idx = static_cast<int>(list.size());
    list.push_back(r);
  }

  void remove_waiter(const void* channel, int r) {
    auto it = waiters_.find(channel);
    auto& list = it->second;
    const int idx = rank(r).waiter_idx;
    list[static_cast<std::size_t>(idx)] = list.back();
    rank(list.back()).waiter_idx = idx;
    list.pop_back();
    rank(r).waiter_idx = -1;
    if (list.empty()) waiters_.erase(it);
  }

  std::vector<RankState> ranks_;
  std::function<std::string(const void*)> namer_;
  VirtualScheduler::PickHook pick_hook_;
  std::vector<int> cand_;  ///< scratch candidate list for the hook
  ReadyHeap heap_;
  std::unordered_map<const void*, std::vector<int>> waiters_;
  std::vector<int> dirty_;  ///< notified ranks pending re-evaluation
  int n_done_ = 0;

  // Barrier accumulator; barrier_gen_'s address doubles as the channel.
  std::vector<int> barrier_waiters_;
  int barrier_arrived_ = 0;
  double barrier_max_time_ = 0.0;
  std::uint64_t barrier_gen_ = 0;
};

}  // namespace xhc::sim::detail
