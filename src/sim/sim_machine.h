// SimMachine — deterministic virtual-time execution over a modeled node.
//
// Runs the same rank functions as RealMachine (data operations move real
// bytes), but each operation also advances a virtual clock priced by the
// node model: topology-dependent copy costs with congestion (Fig. 1),
// cache residency (Fig. 7), cache-line service for flags (Fig. 4, Fig. 10),
// and explicit charges for mechanism overheads (XPMEM attach, syscalls —
// charged by the smsc layer). The virtual clock is continuous across run()
// calls, so warmup iterations populate caches and registration state exactly
// like a long-lived MPI job.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>

#include "mach/machine.h"
#include "sim/access_sink.h"
#include "sim/cache_model.h"
#include "sim/coh_stats.h"
#include "sim/line_model.h"
#include "sim/params.h"
#include "sim/resources.h"
#include "sim/scheduler.h"

namespace xhc::sim {

class SimMachine final : public mach::Machine {
 public:
  SimMachine(topo::Topology topo, int n_ranks,
             topo::MapPolicy policy = topo::MapPolicy::kCore);
  SimMachine(topo::Topology topo, int n_ranks, topo::MapPolicy policy,
             SimParams params);
  ~SimMachine() override;

  const topo::Topology& topology() const noexcept override { return topo_; }
  const topo::RankMap& map() const noexcept override { return map_; }
  const SimParams& params() const noexcept { return params_; }

  void* alloc(int owner_rank, std::size_t bytes, std::size_t align = 64,
              bool zero = true) override;
  void free(void* p) override;

  mach::RunResult run(const std::function<void(mach::Ctx&)>& fn) override;

  /// Virtual time at which the last run() completed (the clock is
  /// continuous across runs).
  double epoch() const noexcept { return epoch_; }

  /// Host execution backend of the virtual-time engine (fiber vs threads;
  /// virtual timestamps are identical either way). Defaults to the
  /// XHC_SIM_BACKEND environment variable, kFiber when unset. May be
  /// changed between runs, never during one.
  SimBackend backend() const noexcept { return backend_; }
  void set_backend(SimBackend b) noexcept { backend_ = b; }

  /// Coherence observatory (mach::Machine hooks). Tracking gates the
  /// accounting inside LineModel/CacheModel plus the wait-window spin-
  /// refetch attribution; virtual timestamps are identical either way.
  void set_coh_tracking(bool on) override { coh_.set_enabled(on); }
  bool coh_tracking() const noexcept override { return coh_.enabled(); }
  bool coh_report(obs::CohReport* out) const override;
  void publish_coh_counters(obs::Metrics& m) override;

  /// Exploration hooks (src/check/). The pick hook perturbs the scheduler's
  /// run order; the access sink observes every flag/data operation. Both
  /// default to null (zero behavioral change) and are installed on the
  /// per-run scheduler by run(), so set them before run() and clear them —
  /// set_pick_hook(nullptr) / set_access_sink(nullptr) — when done.
  void set_pick_hook(VirtualScheduler::PickHook hook) {
    pick_hook_ = std::move(hook);
  }
  void set_access_sink(AccessSink* sink) noexcept { access_ = sink; }

  /// Erases the retained value history of every flag in [base, base+bytes).
  /// For harnesses that place fresh flags into reused allocations (the
  /// schedule interpreter): without this, a crossing recorded by a previous
  /// occupant of the address would satisfy the new flag's waits instantly.
  /// Call between runs, never during one.
  void forget_flag_history(const void* base, std::size_t bytes);

  /// Test hooks.
  CacheModel& cache_model() noexcept { return cache_; }
  LineModel& line_model() noexcept { return lines_; }
  ResourceLedger& ledger() noexcept { return ledger_; }
  CohStats& coh_stats() noexcept { return coh_; }
  const CohStats& coh_stats() const noexcept { return coh_; }

 private:
  class SimCtx;
  friend class SimCtx;

  /// Publish history of one flag: (value, virtual time) pairs, pruned.
  struct FlagHist {
    std::deque<std::pair<std::uint64_t, double>> entries;
    std::uint64_t floor_value = 0;  ///< value before the retained window
    double floor_time = 0.0;

    void append(std::uint64_t value, double t);
    /// Earliest retained time at which the value was >= v; nullopt if the
    /// value has not reached v yet.
    std::optional<double> crossing(std::uint64_t v) const;
    /// Value visible at time t (latest entry with time <= t).
    std::uint64_t value_at(double t) const;
    std::uint64_t last_value() const;
  };

  void setup_ledger();
  /// Prices a bulk read of `n` bytes of `block` (or unregistered memory when
  /// block == nullptr) by `core` starting at `t`; books resources; returns
  /// the duration. `bw_divisor` scales throughput (reductions are slower).
  double price_read(const mach::AllocRegistry::Block* block, int core,
                    std::size_t n, double t, double bw_divisor);

  topo::Topology topo_;
  topo::RankMap map_;
  SimParams params_;
  mach::AllocRegistry registry_;
  CohStats coh_;  ///< declared before the models that point into it
  CacheModel cache_;
  LineModel lines_;
  ResourceLedger ledger_;
  // Hashed on the flag's address; looked up on every simulated flag op
  // (hot path), never iterated, so unordered lookup cost wins and the
  // nondeterministic bucket order is irrelevant.
  std::unordered_map<const mach::Flag*, FlagHist> flag_hist_;
  std::unique_ptr<VirtualScheduler> sched_;  // alive during run()
  VirtualScheduler::PickHook pick_hook_;     // exploration; usually null
  AccessSink* access_ = nullptr;             // exploration; usually null
  SimBackend backend_ = backend_from_env();
  double epoch_ = 0.0;
};

}  // namespace xhc::sim
