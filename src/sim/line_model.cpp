#include "sim/line_model.h"

#include <algorithm>

#include "util/cacheline.h"
#include "util/check.h"

namespace xhc::sim {

LineModel::LineModel(const topo::Topology* topo, const SimParams* params)
    : topo_(topo), params_(params) {
  XHC_REQUIRE(topo_ != nullptr && params_ != nullptr, "null dependency");
}

LineModel::Line& LineModel::line(std::uintptr_t id) { return lines_[id]; }

double& LineModel::core_port(int core) { return core_port_free_[core]; }

std::uint64_t LineModel::store_seq(const void* addr) const noexcept {
  auto it = lines_.find(util::line_of(addr));
  return it == lines_.end() ? 0 : it->second.store_seq;
}

int LineModel::owner_of(const void* addr) const noexcept {
  auto it = lines_.find(util::line_of(addr));
  return it == lines_.end() ? -1 : it->second.owner_core;
}

double LineModel::read(const void* addr, int core, double t, bool pipelined) {
  const double expose = pipelined ? 0.25 : 1.0;
  Line& l = line(util::line_of(addr));
  const bool shared_llc = topo_->has_shared_llc();

  if (l.owner_core < 0 || l.owner_core == core) {
    // Never written, or reading our own line: a local hit.
    if (tracking()) {
      stats_->on_line_read(addr, core, CohEvent::kLocalHit, -1);
    }
    return t + params_->line_hit;
  }

  const int reader_llc = topo_->core(core).llc;
  if (shared_llc && l.sharer_llcs.count(reader_llc) != 0) {
    // A group peer already pulled the line into our LLC (the implicit
    // hardware assist of paper §V-D1).
    if (tracking()) {
      stats_->on_line_read(addr, core, CohEvent::kLlcHit, -1);
    }
    return t + params_->line_lat_llc;
  }

  const topo::Distance dist = topo_->distance(core, l.owner_core);
  double done;
  if (l.dirty) {
    // First read after a store: serviced by the owner core's port; all
    // concurrent first-reads of this core's lines serialize here. This is
    // the modeled HITM — a load answered by a remote core's modified copy.
    if (tracking()) {
      stats_->on_line_read(addr, core, CohEvent::kHitm, l.owner_core);
    }
    double& port = core_port(l.owner_core);
    const double start = std::max(t, port);
    port = start + params_->core_port_service;
    done = start + std::max(params_->line_hit, params_->line_lat(dist) * expose);
    l.dirty = false;
    if (shared_llc) {
      l.sharer_llcs.insert(topo_->core(l.owner_core).llc);
    } else {
      l.in_slc = true;
    }
  } else if (shared_llc) {
    // Served by a providing LLC group; fetches of this line serialize on the
    // line's service point.
    if (tracking()) {
      stats_->on_line_read(addr, core, CohEvent::kRemoteFill, -1);
    }
    const double start = std::max(t, l.line_free);
    l.line_free = start + params_->line_service;
    done = start + std::max(params_->line_hit, params_->line_lat(dist) * expose);
  } else {
    // SLC machine: single physical location; every fetch serializes there
    // and no core-local reuse across cores is possible.
    if (tracking()) {
      stats_->on_line_read(addr, core, CohEvent::kSlcHit, -1);
    }
    const double start = std::max(t, l.line_free);
    l.line_free = start + params_->line_service;
    done = start + std::max(params_->line_hit, params_->line_lat_numa * expose);
  }

  if (shared_llc) l.sharer_llcs.insert(reader_llc);
  return done;
}

double LineModel::write(const void* addr, int core, double t) {
  Line& l = line(util::line_of(addr));
  const bool invalidated = !l.sharer_llcs.empty() || l.in_slc ||
                           (l.owner_core >= 0 && l.owner_core != core);
  double cost = params_->store_cost;
  if (invalidated) {
    cost += params_->inval_cost;
  }
  if (tracking()) {
    const bool transfer = l.owner_core >= 0 && l.owner_core != core;
    stats_->on_line_write(addr, core, invalidated, transfer);
  }
  l.owner_core = core;
  l.dirty = true;
  l.in_slc = false;
  l.sharer_llcs.clear();
  ++l.store_seq;
  const double done = t + cost;
  l.line_free = std::max(l.line_free, done);
  return done;
}

double LineModel::rmw(const void* addr, int core, double t) {
  Line& l = line(util::line_of(addr));
  // Exclusive ownership must be acquired; concurrent RMWs serialize on the
  // line regardless of topology.
  const double start = std::max(t, l.line_free);
  double transfer = params_->line_hit;
  const bool moved = l.owner_core >= 0 && l.owner_core != core;
  if (moved) {
    transfer = params_->line_lat(topo_->distance(core, l.owner_core));
  }
  if (tracking()) {
    stats_->on_line_rmw(addr, core, moved);
  }
  l.owner_core = core;
  l.dirty = true;
  l.in_slc = false;
  l.sharer_llcs.clear();
  ++l.store_seq;
  const double done = start + transfer + params_->rmw_service;
  l.line_free = done;
  return done;
}

void LineModel::reset() {
  lines_.clear();
  core_port_free_.clear();
}

}  // namespace xhc::sim
