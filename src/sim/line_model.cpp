#include "sim/line_model.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::sim {

LineModel::LineModel(const topo::Topology* topo, const SimParams* params)
    : topo_(topo), params_(params) {
  XHC_REQUIRE(topo_ != nullptr && params_ != nullptr, "null dependency");
}

LineModel::Line& LineModel::line(std::uintptr_t id) { return lines_[id]; }

double& LineModel::core_port(int core) { return core_port_free_[core]; }

double LineModel::read(std::uintptr_t id, int core, double t,
                       bool pipelined) {
  const double expose = pipelined ? 0.25 : 1.0;
  Line& l = line(id);
  const bool shared_llc = topo_->has_shared_llc();

  if (l.owner_core < 0 || l.owner_core == core) {
    // Never written, or reading our own line: a local hit.
    return t + params_->line_hit;
  }

  const int reader_llc = topo_->core(core).llc;
  if (shared_llc && l.sharer_llcs.count(reader_llc) != 0) {
    // A group peer already pulled the line into our LLC (the implicit
    // hardware assist of paper §V-D1).
    return t + params_->line_lat_llc;
  }

  const topo::Distance dist = topo_->distance(core, l.owner_core);
  double done;
  if (l.dirty) {
    // First read after a store: serviced by the owner core's port; all
    // concurrent first-reads of this core's lines serialize here.
    double& port = core_port(l.owner_core);
    const double start = std::max(t, port);
    port = start + params_->core_port_service;
    done = start + std::max(params_->line_hit, params_->line_lat(dist) * expose);
    l.dirty = false;
    if (shared_llc) {
      l.sharer_llcs.insert(topo_->core(l.owner_core).llc);
    } else {
      l.in_slc = true;
    }
  } else if (shared_llc) {
    // Served by a providing LLC group; fetches of this line serialize on the
    // line's service point.
    const double start = std::max(t, l.line_free);
    l.line_free = start + params_->line_service;
    done = start + std::max(params_->line_hit, params_->line_lat(dist) * expose);
  } else {
    // SLC machine: single physical location; every fetch serializes there
    // and no core-local reuse across cores is possible.
    const double start = std::max(t, l.line_free);
    l.line_free = start + params_->line_service;
    done = start + std::max(params_->line_hit, params_->line_lat_numa * expose);
  }

  if (shared_llc) l.sharer_llcs.insert(reader_llc);
  return done;
}

double LineModel::write(std::uintptr_t id, int core, double t) {
  Line& l = line(id);
  double cost = params_->store_cost;
  if (!l.sharer_llcs.empty() || l.in_slc ||
      (l.owner_core >= 0 && l.owner_core != core)) {
    cost += params_->inval_cost;
  }
  l.owner_core = core;
  l.dirty = true;
  l.in_slc = false;
  l.sharer_llcs.clear();
  const double done = t + cost;
  l.line_free = std::max(l.line_free, done);
  return done;
}

double LineModel::rmw(std::uintptr_t id, int core, double t) {
  Line& l = line(id);
  // Exclusive ownership must be acquired; concurrent RMWs serialize on the
  // line regardless of topology.
  const double start = std::max(t, l.line_free);
  double transfer = params_->line_hit;
  if (l.owner_core >= 0 && l.owner_core != core) {
    transfer = params_->line_lat(topo_->distance(core, l.owner_core));
  }
  l.owner_core = core;
  l.dirty = true;
  l.in_slc = false;
  l.sharer_llcs.clear();
  const double done = start + transfer + params_->rmw_service;
  l.line_free = done;
  return done;
}

void LineModel::reset() {
  lines_.clear();
  core_port_free_.clear();
}

}  // namespace xhc::sim
