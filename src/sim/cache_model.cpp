#include "sim/cache_model.h"

#include <vector>

#include "util/check.h"

namespace xhc::sim {

const char* to_string(ServeKind k) {
  switch (k) {
    case ServeKind::kLocalLlc:
      return "local-llc";
    case ServeKind::kSlc:
      return "slc";
    case ServeKind::kProducerLlc:
      return "producer-llc";
    case ServeKind::kMemory:
      return "memory";
  }
  return "?";
}

CacheModel::CacheModel(const topo::Topology* topo, const SimParams* params)
    : topo_(topo), params_(params) {
  XHC_REQUIRE(topo_ != nullptr && params_ != nullptr, "null dependency");
}

void CacheModel::add_block(std::uint64_t id, std::size_t bytes, int home_numa) {
  Block b;
  b.bytes = bytes;
  b.home_numa = home_numa;
  blocks_[id] = b;
}

void CacheModel::remove_block(std::uint64_t id) { blocks_.erase(id); }

bool CacheModel::fits_llc(const Block& b) const noexcept {
  if (params_->llc_bytes == 0) return false;
  // Several ranks per LLC group each keep their own working buffers; a
  // buffer enjoys residency only while a group share of the LLC can hold it
  // (paper Fig. 7: the caching benefit disappears above ~1 MB).
  return b.bytes * 5 <= params_->llc_bytes;
}

bool CacheModel::fits_slc(const Block& b) const noexcept {
  if (params_->slc_bytes == 0) return false;
  return b.bytes * 8 <= params_->slc_bytes;
}

void CacheModel::on_write(std::uint64_t id, int writer_core) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  Block& b = it->second;
  if (tracking() && (!b.resident_llcs.empty() || b.in_slc)) {
    // The version bump is the buffer-granularity analogue of an
    // invalidation broadcast: live cached copies of the old version die.
    stats_->on_block_inval(writer_core);
  }
  ++b.version;
  b.resident_llcs.clear();
  b.in_slc = false;
  b.read_progress.clear();
  b.producer_llc = topo_->has_shared_llc() ? topo_->core(writer_core).llc : -1;
  if (topo_->has_shared_llc() && fits_llc(b)) {
    // The writer just produced the data; its own LLC group holds it.
    b.resident_llcs.insert(b.producer_llc);
  }
}

ServeInfo CacheModel::on_read(std::uint64_t id, int reader_core,
                              std::size_t bytes) {
  auto it = blocks_.find(id);
  XHC_CHECK(it != blocks_.end(), "read of unregistered block");
  Block& b = it->second;
  const topo::CorePlace& reader = topo_->core(reader_core);

  ServeInfo info;
  if (topo_->has_shared_llc() && b.resident_llcs.count(reader.llc) != 0) {
    info.kind = ServeKind::kLocalLlc;
    info.src_llc = reader.llc;
    info.src_numa = reader.numa;
    info.distance = topo::Distance::kLlcLocal;
    if (tracking()) {
      stats_->on_block_read(reader_core, CohEvent::kBlockLocalLlc);
    }
    return info;  // no residency change, no interconnect crossing
  }
  if (b.in_slc) {
    info.kind = ServeKind::kSlc;
    info.src_numa = b.home_numa;
    info.distance = topo::Distance::kIntraNuma;  // latency via params_->slc
  } else if (topo_->has_shared_llc() && b.producer_llc >= 0 &&
             b.resident_llcs.count(b.producer_llc) != 0) {
    info.kind = ServeKind::kProducerLlc;
    info.src_llc = b.producer_llc;
    // Distance from the reader to the serving LLC group.
    const int rep = llc_rep_core(b.producer_llc);
    info.src_numa = topo_->core(rep).numa;
    info.distance = topo_->distance(reader_core, rep);
  } else {
    info.kind = ServeKind::kMemory;
    info.src_numa = b.home_numa;
    info.distance = numa_distance(reader_core, b.home_numa);
  }

  // Residency update: a cache holds the version only after a full block's
  // worth of bytes has flowed toward it (chunked pulls stay priced at the
  // source until the whole buffer has moved).
  if (topo_->has_shared_llc() && fits_llc(b)) {
    std::size_t& progress = b.read_progress[reader.llc];
    progress += bytes;
    if (progress >= b.bytes) b.resident_llcs.insert(reader.llc);
  }
  if (!topo_->has_shared_llc() && fits_slc(b)) {
    std::size_t& progress = b.read_progress[-1];
    progress += bytes;
    if (progress >= b.bytes) b.in_slc = true;
  }
  if (tracking()) {
    switch (info.kind) {
      case ServeKind::kLocalLlc:
        stats_->on_block_read(reader_core, CohEvent::kBlockLocalLlc);
        break;
      case ServeKind::kSlc:
        stats_->on_block_read(reader_core, CohEvent::kBlockSlc);
        break;
      case ServeKind::kProducerLlc:
        stats_->on_block_read(reader_core, CohEvent::kBlockProducerLlc);
        break;
      case ServeKind::kMemory:
        stats_->on_block_read(reader_core, CohEvent::kBlockMemory);
        break;
    }
  }
  return info;
}

ServeInfo CacheModel::local_read(int reader_core) const {
  ServeInfo info;
  info.kind = ServeKind::kMemory;
  info.src_numa = topo_->core(reader_core).numa;
  info.distance = topo::Distance::kIntraNuma;
  return info;
}

std::uint64_t CacheModel::version(std::uint64_t id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? 0 : it->second.version;
}

bool CacheModel::resident_in_llc(std::uint64_t id, int llc) const {
  auto it = blocks_.find(id);
  return it != blocks_.end() && it->second.resident_llcs.count(llc) != 0;
}

int CacheModel::llc_rep_core(int llc) const {
  for (const auto& c : topo_->cores()) {
    if (c.llc == llc) return c.core;
  }
  XHC_CHECK(false, "no core in llc group ", llc);
  return 0;
}

topo::Distance CacheModel::numa_distance(int reader_core, int numa) const {
  const topo::CorePlace& reader = topo_->core(reader_core);
  if (reader.numa == numa) return topo::Distance::kIntraNuma;
  // Socket of the target NUMA node: take any core homed there.
  for (const auto& c : topo_->cores()) {
    if (c.numa == numa) {
      return c.socket == reader.socket ? topo::Distance::kCrossNuma
                                       : topo::Distance::kCrossSocket;
    }
  }
  return topo::Distance::kCrossNuma;
}

void CacheModel::reset() {
  for (auto& [id, b] : blocks_) {
    b.version = 0;
    b.producer_llc = -1;
    b.in_slc = false;
    b.resident_llcs.clear();
    b.read_progress.clear();
  }
}

}  // namespace xhc::sim
