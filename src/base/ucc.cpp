#include "base/ucc.h"

namespace xhc::base {

UccComponent::UccComponent(mach::Machine& machine, coll::Tuning tuning) {
  // Static socket-level schedule, coarse chunks, no finer topology levels.
  // Multi-socket: static socket-level trees. Single socket: UCC still
  // builds one-level trees (knomial teams), modeled as a NUMA-level
  // hierarchy rather than a flat fan-out.
  tuning.sensitivity =
      machine.topology().n_sockets() > 1 ? "socket" : "numa";
  tuning.chunk_bytes = {64 * 1024};
  tuning.flag_layout = coll::FlagLayout::kSingle;
  tuning.sync = coll::SyncMethod::kSingleWriter;
  inner_ = std::make_unique<core::XhcComponent>(machine, std::move(tuning),
                                                "ucc-inner");
}

void UccComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                         int root) {
  ctx.charge(kDispatchOverhead);
  inner_->bcast(ctx, buf, bytes, root);
}

void UccComponent::allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                             std::size_t count, mach::DType dtype,
                             mach::ROp op) {
  ctx.charge(kDispatchOverhead);
  inner_->allreduce(ctx, sbuf, rbuf, count, dtype, op);
}

std::optional<smsc::RegCache::Stats> UccComponent::reg_cache_stats() const {
  return inner_->reg_cache_stats();
}

}  // namespace xhc::base
