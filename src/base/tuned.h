// `tuned` baseline — OpenMPI's default collectives component (paper §II-A,
// §V-C): classic tree/ring algorithms over point-to-point messages, with
// static rank-numbered schedules that ignore the node topology (the source
// of the mapping/root sensitivity explored in Fig. 9 and Table II).
//
// Algorithm selection follows tuned's style of size-based decision rules:
//   bcast:      binomial tree (small), segmented binary tree (medium),
//               segmented pipeline chain (large)
//   allreduce:  recursive doubling (small), ring reduce-scatter + allgather
//               (large)
#pragma once

#include <vector>

#include "coll/component.h"
#include "p2p/fabric.h"

namespace xhc::base {

class TunedComponent final : public coll::Component {
 public:
  TunedComponent(mach::Machine& machine, coll::Tuning tuning);
  ~TunedComponent() override;

  std::string_view name() const noexcept override { return "tuned"; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes, int root) override;
  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype, mach::ROp op) override;
  /// Binomial-tree MPI_Reduce over pt2pt (children fold partials upward).
  void reduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
              std::size_t count, mach::DType dtype, mach::ROp op,
              int root) override;
  /// Dissemination barrier (log2(n) rounds of one-byte exchanges).
  void barrier(mach::Ctx& ctx) override;

  /// Observability sink, gated by Tuning::trace like the XHC component so
  /// side-by-side traces of both components use one switch.
  void set_observer(obs::Observer* observer) noexcept override {
    coll::Component::set_observer(tuning_.trace ? observer : nullptr);
  }

  p2p::Fabric& fabric() noexcept { return fabric_; }

 private:
  void bcast_binomial(mach::Ctx& ctx, void* buf, std::size_t bytes, int root,
                      std::size_t seg, int tag0);
  void bcast_chain(mach::Ctx& ctx, void* buf, std::size_t bytes, int root,
                   std::size_t seg, int tag0);
  void bcast_binary(mach::Ctx& ctx, void* buf, std::size_t bytes, int root,
                    std::size_t seg, int tag0);
  void allreduce_recursive_doubling(mach::Ctx& ctx, void* rbuf,
                                    std::size_t count, mach::DType dtype,
                                    mach::ROp op, int tag0);
  void allreduce_ring(mach::Ctx& ctx, void* rbuf, std::size_t count,
                      mach::DType dtype, mach::ROp op, int tag0);

  /// Per-rank scratch area, grown on demand.
  std::byte* scratch(mach::Ctx& ctx, std::size_t bytes);

  mach::Machine* machine_;
  coll::Tuning tuning_;
  p2p::Fabric fabric_;
  struct Scratch {
    void* p = nullptr;
    std::size_t bytes = 0;
  };
  std::vector<Scratch> scratch_;       // per rank
  std::vector<std::uint64_t> op_seq_;  // per rank (padded stride not needed:
                                       // each rank touches only its slot)
};

}  // namespace xhc::base
