#include "base/shm_component.h"

#include <algorithm>
#include <string>

#include "topo/hierarchy.h"
#include "util/cacheline.h"
#include "util/check.h"
#include "verify/verify.h"

namespace xhc::base {

namespace {

constexpr std::size_t kCDepth = 4;  ///< contribution ring depth

std::size_t chunk_end(std::size_t bytes, std::size_t c, std::size_t slot_sz) {
  return std::min(bytes, (c + 1) * slot_sz);
}

}  // namespace

struct ShmComponent::GroupShm {
  // Result stream: leader → members.
  std::byte* ring = nullptr;  ///< kDepth * slot payload bytes
  util::CachePadded<mach::Flag>* announce = nullptr;  ///< leader: cumulative
                                                      ///< bytes streamed
  util::CachePadded<mach::Flag>* ring_ack = nullptr;  ///< [slots] member
                                                      ///< cumulative bytes
  util::CachePadded<mach::Flag>* slot_ctr = nullptr;  ///< [kDepth] atomic
                                                      ///< ack counters
  // Contribution streams: members → leader (allreduce).
  std::byte* contrib = nullptr;  ///< [slots][kCDepth][slot]
  util::CachePadded<mach::Flag>* ready = nullptr;     ///< [slots] member:
                                                      ///< bytes staged
  util::CachePadded<mach::Flag>* consumed = nullptr;  ///< leader: bytes
                                                      ///< reduced

  std::vector<void*> allocs;
  mach::Machine* machine = nullptr;
  std::size_t slot_bytes = 0;  ///< ring slot size the group was built with

  ~GroupShm() {
    for (void* p : allocs) machine->free(p);
  }

  std::byte* ring_slot(std::size_t c) {
    return ring + (c % ShmComponent::kDepth) * slot_bytes;
  }
  std::byte* contrib_slot(int slot, std::size_t c) {
    return contrib + (static_cast<std::size_t>(slot) * kCDepth +
                      c % kCDepth) *
                         slot_bytes;
  }
};

struct ShmComponent::RankState {
  std::vector<std::uint64_t> ring_base;     ///< per group, cumulative bytes
  std::vector<std::uint64_t> contrib_base;  ///< per group, cumulative bytes
  std::vector<std::uint64_t> ctr_base;      ///< per group*kDepth, atomic acks
};

ShmComponent::ShmComponent(mach::Machine& machine, coll::Tuning tuning,
                           std::string name)
    : machine_(&machine),
      tuning_(std::move(tuning)),
      name_(std::move(name)),
      tree_(machine, topo::parse_sensitivity(tuning_.sensitivity)) {
  fault_ = fault::make_injector(tuning_.faults, tuning_.fault_seed,
                                machine.n_ranks());
  // Under injected shm exhaustion: retry each segment a bounded number of
  // times, then rebuild every ring with half-sized slots, down to a one-page
  // floor (every group must share one slot size — the mirrored base
  // arithmetic depends on it).
  constexpr std::size_t kMinSlot = 4096;
  for (;;) {
    if (build_groups()) break;
    XHC_CHECK(slot_ / 2 >= kMinSlot,
              name_, ": shared ring allocation exhausted (failed even with ",
              slot_, "-byte slots after ", shm_retries_, " retries)");
    groups_.clear();
    slot_ /= 2;
  }
  ranks_.reserve(static_cast<std::size_t>(machine.n_ranks()));
  for (int r = 0; r < machine.n_ranks(); ++r) {
    auto rs = std::make_unique<RankState>();
    rs->ring_base.assign(static_cast<std::size_t>(tree_.n_groups()), 0);
    rs->contrib_base.assign(static_cast<std::size_t>(tree_.n_groups()), 0);
    rs->ctr_base.assign(static_cast<std::size_t>(tree_.n_groups()) * kDepth,
                        0);
    ranks_.push_back(std::move(rs));
  }
}

ShmComponent::~ShmComponent() = default;

bool ShmComponent::build_groups() {
  mach::Machine& machine = *machine_;
  groups_.reserve(static_cast<std::size_t>(tree_.n_groups()));
  for (int g = 0; g < tree_.n_groups(); ++g) {
    const core::GroupShape& shape = tree_.shape(g);
    const auto slots = static_cast<std::size_t>(shape.domain_ranks.size());
    auto shm = std::make_unique<GroupShm>();
    shm->machine = machine_;
    shm->slot_bytes = slot_;
    auto padded_flags = [&](std::size_t count) {
      void* p = machine.alloc(shape.home_rank,
                              sizeof(util::CachePadded<mach::Flag>) * count);
      shm->allocs.push_back(p);
      auto* f = static_cast<util::CachePadded<mach::Flag>*>(p);
      for (std::size_t i = 0; i < count; ++i) {
        new (f + i) util::CachePadded<mach::Flag>();
      }
      return f;
    };
    // The payload areas are the realistic exhaustion target; the flag
    // arrays are a few cache lines and allocated directly.
    shm->ring = static_cast<std::byte*>(
        fault::alloc_with_retry(machine, fault_.get(), shape.home_rank,
                                kDepth * slot_, /*zero=*/true,
                                /*max_attempts=*/3, &shm_retries_));
    if (shm->ring == nullptr) return false;
    shm->allocs.push_back(shm->ring);
    shm->announce = padded_flags(1);
    shm->ring_ack = padded_flags(slots);
    shm->slot_ctr = padded_flags(kDepth);
    shm->contrib = static_cast<std::byte*>(
        fault::alloc_with_retry(machine, fault_.get(), shape.home_rank,
                                slots * kCDepth * slot_, /*zero=*/true,
                                /*max_attempts=*/3, &shm_retries_));
    if (shm->contrib == nullptr) return false;
    shm->allocs.push_back(shm->contrib);
    shm->ready = padded_flags(slots);
    shm->consumed = padded_flags(1);

    // Protocol verifier registration. The streaming flags follow the root
    // of the operation (kRotating); per-slot acks have a fixed writer; the
    // slot counters are this baseline's whitelisted multi-writer path.
    verify::Ledger& led = machine.verify_ledger();
    const std::string prefix = name_ + ".g" + std::to_string(g);
    led.register_flag(&*shm->announce[0], prefix + ".announce",
                      verify::WriterPolicy::kRotating);
    led.register_flag(&*shm->consumed[0], prefix + ".consumed",
                      verify::WriterPolicy::kRotating);
    for (std::size_t i = 0; i < slots; ++i) {
      led.register_flag(&*shm->ring_ack[i],
                        prefix + ".ring_ack[" + std::to_string(i) + "]",
                        verify::WriterPolicy::kFixed);
      led.register_flag(&*shm->ready[i],
                        prefix + ".ready[" + std::to_string(i) + "]",
                        verify::WriterPolicy::kFixed);
    }
    for (std::size_t d = 0; d < kDepth; ++d) {
      led.register_flag(&*shm->slot_ctr[d],
                        prefix + ".slot_ctr[" + std::to_string(d) + "]",
                        verify::WriterPolicy::kShared);
    }
    groups_.push_back(std::move(shm));
  }
  return true;
}

void ShmComponent::maybe_stall(mach::Ctx& ctx) {
  if (fault_ == nullptr) return;
  const double d = fault_->straggler_delay(ctx.rank(), -1);
  if (d <= 0.0) return;
  book(ctx, obs::Counter::kFaultStalls, 1);
  ctx.stall(d);
}

void ShmComponent::ring_wait_free(mach::Ctx& ctx, GroupShm& g,
                                  const core::CommView::Membership& m,
                                  std::uint64_t base, std::size_t lo,
                                  std::size_t bytes) {
  const std::size_t c = lo / slot_;
  if (c < kDepth) return;  // ring drained between ops; first uses are free
  const std::size_t prev_end = chunk_end(bytes, c - kDepth, slot_);
  if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
    const core::GroupShape& shape = tree_.shape(m.ctl_id);
    for (const int j : m.members) {
      if (j == ctx.rank()) continue;
      ctx.flag_wait_ge(*g.ring_ack[shape.slot_of(j)], base + prev_end);
    }
  } else {
    const std::uint64_t members =
        static_cast<std::uint64_t>(m.members.size() - 1);
    RankState& rs = state(ctx.rank());
    const std::uint64_t slot_base =
        rs.ctr_base[static_cast<std::size_t>(m.ctl_id) * kDepth + c % kDepth];
    // Reuse `u = c / kDepth` of the slot needs use u-1 fully acknowledged.
    ctx.flag_wait_ge(*g.slot_ctr[c % kDepth],
                     slot_base + (c / kDepth) * members);
  }
}

void ShmComponent::ring_ack(mach::Ctx& ctx, GroupShm& g,
                            const core::CommView::Membership& m, std::uint64_t base,
                            std::size_t lo, std::size_t hi) {
  if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
    ctx.flag_store(*g.ring_ack[m.my_slot], base + hi);
  } else {
    ctx.fetch_add(*g.slot_ctr[(lo / slot_) % kDepth], 1);
  }
}

void ShmComponent::advance_ctr_base(RankState& rs, const core::CommView& view,
                                    std::size_t n_chunks) {
  // Every group's per-slot counter grew by uses(slot) * (group size - 1);
  // each group is owned by exactly one leader in the view.
  for (int rr = 0; rr < machine_->n_ranks(); ++rr) {
    for (const auto& m : view.memberships(rr)) {
      if (!m.is_leader) continue;
      const std::uint64_t members =
          static_cast<std::uint64_t>(m.members.size() - 1);
      for (std::size_t slot = 0; slot < kDepth && slot < n_chunks; ++slot) {
        const std::uint64_t uses = (n_chunks - slot + kDepth - 1) / kDepth;
        rs.ctr_base[static_cast<std::size_t>(m.ctl_id) * kDepth + slot] +=
            uses * members;
      }
    }
  }
}

void ShmComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                         int root) {
  if (bytes == 0 || ctx.size() == 1) return;
  maybe_stall(ctx);
  const int r = ctx.rank();
  RankState& rs = state(r);
  const core::CommView& view = tree_.view(root);
  const auto& ms = view.memberships(r);
  auto* p = static_cast<std::byte*>(buf);
  const std::size_t n_chunks = (bytes + slot_ - 1) / slot_;

  const core::CommView::Membership& top = ms.back();
  if (top.is_leader) {
    // Root: stream the payload into the ring of every led group.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t lo = c * slot_;
      const std::size_t hi = chunk_end(bytes, c, slot_);
      for (const auto& m : ms) {
        GroupShm& g = shm(m.ctl_id);
        const std::uint64_t base =
            rs.ring_base[static_cast<std::size_t>(m.ctl_id)];
        ring_wait_free(ctx, g, m, base, lo, bytes);
        ctx.copy(g.ring_slot(c) , p + lo, hi - lo);
        ctx.flag_store(*g.announce[0], base + hi);
      }
    }
  } else {
    // Pull from the member-level leader's ring; leaders re-stream to their
    // own groups (two copies per level: ring→buf, buf→ring).
    GroupShm& gt = shm(top.ctl_id);
    const std::uint64_t base_t =
        rs.ring_base[static_cast<std::size_t>(top.ctl_id)];
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t lo = c * slot_;
      const std::size_t hi = chunk_end(bytes, c, slot_);
      ctx.flag_wait_ge(*gt.announce[0], base_t + hi);
      ctx.copy(p + lo, gt.ring_slot(c), hi - lo);
      ring_ack(ctx, gt, top, base_t, lo, hi);
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        GroupShm& g = shm(ms[i].ctl_id);
        const std::uint64_t base =
            rs.ring_base[static_cast<std::size_t>(ms[i].ctl_id)];
        ring_wait_free(ctx, g, ms[i], base, lo, bytes);
        ctx.copy(g.ring_slot(c), p + lo, hi - lo);
        ctx.flag_store(*g.announce[0], base + hi);
      }
    }
    record_traffic(top.leader, r);
  }

  // Drain: leaders wait for their groups before the rings can be reused.
  for (const auto& m : ms) {
    if (!m.is_leader) continue;
    GroupShm& g = shm(m.ctl_id);
    const std::uint64_t base = rs.ring_base[static_cast<std::size_t>(m.ctl_id)];
    if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
      const core::GroupShape& shape = tree_.shape(m.ctl_id);
      for (const int j : m.members) {
        if (j == r) continue;
        ctx.flag_wait_ge(*g.ring_ack[shape.slot_of(j)], base + bytes);
      }
    } else {
      const std::uint64_t members =
          static_cast<std::uint64_t>(m.members.size() - 1);
      for (std::size_t slot = 0; slot < kDepth && slot < n_chunks; ++slot) {
        const std::uint64_t uses = (n_chunks - slot + kDepth - 1) / kDepth;
        const std::size_t idx =
            static_cast<std::size_t>(m.ctl_id) * kDepth + slot;
        ctx.flag_wait_ge(*g.slot_ctr[slot], rs.ctr_base[idx] + uses * members);
      }
    }
  }

  // Advance mirrored bases (identical on every rank: every rank executes
  // every collective and can recompute every group's traffic).
  for (int gid = 0; gid < tree_.n_groups(); ++gid) {
    rs.ring_base[static_cast<std::size_t>(gid)] += bytes;
  }
  if (tuning_.sync == coll::SyncMethod::kAtomicFetchAdd) {
    advance_ctr_base(rs, view, n_chunks);
  }
}

void ShmComponent::allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                             std::size_t count, mach::DType dtype,
                             mach::ROp op) {
  const std::size_t elem = mach::dtype_size(dtype);
  const std::size_t bytes = count * elem;
  if (count == 0) return;
  const bool in_place = (sbuf == rbuf || sbuf == nullptr);
  if (in_place) sbuf = rbuf;
  if (ctx.size() == 1) {
    if (!in_place) ctx.copy(rbuf, sbuf, bytes);
    return;
  }

  maybe_stall(ctx);
  const int r = ctx.rank();
  RankState& rs = state(r);
  const core::CommView& view = tree_.view(0);
  const auto& ms = view.memberships(r);
  const auto* sp = static_cast<const std::byte*>(sbuf);
  auto* rp = static_cast<std::byte*>(rbuf);
  const std::size_t n_chunks = (bytes + slot_ - 1) / slot_;
  const core::CommView::Membership& top = ms.back();

  // ---- pipelined reduce + broadcast ---------------------------------------
  // Each rank walks chunks in order, performing its reduce-side duties for
  // chunk `it` and its broadcast-side duties for chunk `it - kLag`. The lag
  // lets the top of the tree run ahead while the bounded rings stay
  // drainable (kLag < kDepth, so every ring-window wait can be satisfied by
  // broadcast progress at most kLag chunks behind).
  constexpr std::size_t kLag = 4;
  static_assert(kLag < kDepth && kLag <= kCDepth,
                "broadcast lag must fit inside the ring windows");
  GroupShm* gt = top.is_leader ? nullptr : &shm(top.ctl_id);
  const std::uint64_t base_t =
      rs.ring_base[static_cast<std::size_t>(top.ctl_id)];

  for (std::size_t it = 0; it < n_chunks + kLag; ++it) {
    if (it < n_chunks) {
      const std::size_t c = it;
      const std::size_t lo = c * slot_;
      const std::size_t hi = chunk_end(bytes, c, slot_);
      const std::size_t n_elems = (hi - lo) / elem;
      XHC_CHECK(n_elems * elem == hi - lo, "ring slot not element-aligned");

      // Leader duties, bottom-up: reduce the group's staged contributions
      // into this rank's rbuf (the subtree partial).
      for (const auto& m : ms) {
        if (!m.is_leader) break;
        GroupShm& g = shm(m.ctl_id);
        const core::GroupShape& shape = tree_.shape(m.ctl_id);
        const std::uint64_t cbase =
            rs.contrib_base[static_cast<std::size_t>(m.ctl_id)];
        if (m.level == 0 && !in_place) {
          ctx.copy(rp + lo, sp + lo, hi - lo);
        }
        for (const int j : m.members) {
          if (j == r) continue;
          const int slot = shape.slot_of(j);
          ctx.flag_wait_ge(*g.ready[slot], cbase + hi);
          ctx.reduce(rp + lo, g.contrib_slot(slot, c), n_elems, dtype, op);
        }
        ctx.flag_store(*g.consumed[0], cbase + hi);
      }

      if (top.is_leader) {
        // Internal root: stream the globally reduced chunk to every led
        // group's ring.
        for (const auto& m : ms) {
          GroupShm& g = shm(m.ctl_id);
          const std::uint64_t base =
              rs.ring_base[static_cast<std::size_t>(m.ctl_id)];
          ring_wait_free(ctx, g, m, base, lo, bytes);
          ctx.copy(g.ring_slot(c), rp + lo, hi - lo);
          ctx.flag_store(*g.announce[0], base + hi);
        }
      } else {
        // Stage this rank's contribution with its member-level leader:
        // leaf ranks stage sbuf, lower-level leaders the partial just
        // reduced into rbuf.
        GroupShm& g = *gt;
        const std::uint64_t cbase =
            rs.contrib_base[static_cast<std::size_t>(top.ctl_id)];
        const std::byte* src = ms.size() == 1 ? sp : rp;
        if (c >= kCDepth) {
          ctx.flag_wait_ge(*g.consumed[0],
                           cbase + chunk_end(bytes, c - kCDepth, slot_));
        }
        ctx.copy(g.contrib_slot(top.my_slot, c), src + lo, hi - lo);
        ctx.flag_store(*g.ready[top.my_slot], cbase + hi);
      }
    }

    // Broadcast-side duties for the chunk kLag behind.
    if (!top.is_leader && it >= kLag && it - kLag < n_chunks) {
      const std::size_t c = it - kLag;
      const std::size_t lo = c * slot_;
      const std::size_t hi = chunk_end(bytes, c, slot_);
      ctx.flag_wait_ge(*gt->announce[0], base_t + hi);
      ctx.copy(rp + lo, gt->ring_slot(c), hi - lo);
      ring_ack(ctx, *gt, top, base_t, lo, hi);
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        GroupShm& g = shm(ms[i].ctl_id);
        const std::uint64_t base =
            rs.ring_base[static_cast<std::size_t>(ms[i].ctl_id)];
        ring_wait_free(ctx, g, ms[i], base, lo, bytes);
        ctx.copy(g.ring_slot(c), rp + lo, hi - lo);
        ctx.flag_store(*g.announce[0], base + hi);
      }
    }
  }
  if (!top.is_leader) record_traffic(r, top.leader);

  // ---- drain & mirrored base advancement ---------------------------------
  for (const auto& m : ms) {
    if (!m.is_leader) {
      // The contribution area is reusable once fully consumed.
      GroupShm& g = shm(m.ctl_id);
      ctx.flag_wait_ge(*g.consumed[0],
                       rs.contrib_base[static_cast<std::size_t>(m.ctl_id)] +
                           bytes);
      continue;
    }
    GroupShm& g = shm(m.ctl_id);
    const std::uint64_t base = rs.ring_base[static_cast<std::size_t>(m.ctl_id)];
    if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
      const core::GroupShape& shape = tree_.shape(m.ctl_id);
      for (const int j : m.members) {
        if (j == r) continue;
        ctx.flag_wait_ge(*g.ring_ack[shape.slot_of(j)], base + bytes);
      }
    } else {
      const std::uint64_t members =
          static_cast<std::uint64_t>(m.members.size() - 1);
      for (std::size_t slot = 0; slot < kDepth && slot < n_chunks; ++slot) {
        const std::uint64_t uses = (n_chunks - slot + kDepth - 1) / kDepth;
        const std::size_t idx =
            static_cast<std::size_t>(m.ctl_id) * kDepth + slot;
        ctx.flag_wait_ge(*g.slot_ctr[slot], rs.ctr_base[idx] + uses * members);
      }
    }
  }

  for (int gid = 0; gid < tree_.n_groups(); ++gid) {
    rs.ring_base[static_cast<std::size_t>(gid)] += bytes;
    rs.contrib_base[static_cast<std::size_t>(gid)] += bytes;
  }
  if (tuning_.sync == coll::SyncMethod::kAtomicFetchAdd) {
    advance_ctr_base(rs, view, n_chunks);
  }
}

}  // namespace xhc::base
