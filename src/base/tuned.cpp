#include "base/tuned.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::base {

namespace {

/// Largest power of two <= n.
int pow2_floor(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Element range [lo, hi) of ring part `i` out of `n` over `count` elements.
std::pair<std::size_t, std::size_t> ring_part(std::size_t count, int n,
                                              int i) {
  const std::size_t q = count / static_cast<std::size_t>(n);
  const std::size_t rem = count % static_cast<std::size_t>(n);
  const auto ui = static_cast<std::size_t>(i);
  const std::size_t lo = q * ui + std::min<std::size_t>(ui, rem);
  const std::size_t hi = lo + q + (ui < rem ? 1 : 0);
  return {lo, hi};
}

}  // namespace

TunedComponent::TunedComponent(mach::Machine& machine, coll::Tuning tuning)
    : machine_(&machine),
      tuning_(std::move(tuning)),
      fabric_(machine,
              p2p::Fabric::Config{
                  .eager_threshold = tuning_.eager_threshold,
                  .eager_slot = std::max<std::size_t>(tuning_.eager_threshold,
                                                      8192),
                  .mechanism = tuning_.mechanism,
                  .reg_cache = tuning_.reg_cache,
                  .match_overhead = 400e-9,
              }),
      scratch_(static_cast<std::size_t>(machine.n_ranks())),
      op_seq_(static_cast<std::size_t>(machine.n_ranks()), 0) {}

TunedComponent::~TunedComponent() {
  for (auto& s : scratch_) {
    if (s.p != nullptr) machine_->free(s.p);
  }
}

std::byte* TunedComponent::scratch(mach::Ctx& ctx, std::size_t bytes) {
  Scratch& s = scratch_[static_cast<std::size_t>(ctx.rank())];
  if (s.bytes < bytes) {
    if (s.p != nullptr) machine_->free(s.p);
    s.p = machine_->alloc(ctx.rank(), bytes);
    s.bytes = bytes;
  }
  return static_cast<std::byte*>(s.p);
}

// ---------------------------------------------------------------------------
// Broadcast

void TunedComponent::bcast_binomial(mach::Ctx& ctx, void* buf,
                                    std::size_t bytes, int root,
                                    std::size_t seg, int tag0) {
  const int n = ctx.size();
  const int vr = (ctx.rank() - root + n) % n;
  if (seg == 0 || seg >= bytes) seg = bytes;
  const int n_segs = static_cast<int>((bytes + seg - 1) / seg);
  auto* p = static_cast<std::byte*>(buf);

  // Parent: the lowest set bit of vr points at it; the root has none.
  int recv_mask = 0;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      recv_mask = mask;
      break;
    }
    mask <<= 1;
  }
  const int parent = recv_mask ? (vr - recv_mask + root) % n : -1;
  // Children: vr + cm for every mask cm below the receive bit (the root
  // forwards from the top bit down).
  const int child_mask0 = recv_mask ? (recv_mask >> 1) : pow2_floor(n);

  // Child sends are posted non-blocking and completed one segment later, so
  // transfers to all children and the next receive overlap (tuned's isend
  // pipelining).
  std::vector<p2p::Fabric::SendHandle> prev;
  for (int k = 0; k < n_segs; ++k) {
    const std::size_t lo = static_cast<std::size_t>(k) * seg;
    const std::size_t len = std::min(seg, bytes - lo);
    if (parent >= 0) {
      fabric_.recv(ctx, parent, tag0 + k, p + lo, len);
    }
    std::vector<p2p::Fabric::SendHandle> cur;
    for (int cm = child_mask0; cm > 0; cm >>= 1) {
      if (vr + cm < n) {
        const int dst = (vr + cm + root) % n;
        if (k == 0) record_traffic(ctx.rank(), dst);  // one logical transfer
        cur.push_back(fabric_.isend(ctx, dst, tag0 + k, p + lo, len));
      }
    }
    for (auto& h : prev) fabric_.wait_send(ctx, h);
    prev = std::move(cur);
  }
  for (auto& h : prev) fabric_.wait_send(ctx, h);
}

void TunedComponent::bcast_chain(mach::Ctx& ctx, void* buf, std::size_t bytes,
                                 int root, std::size_t seg, int tag0) {
  const int n = ctx.size();
  const int vr = (ctx.rank() - root + n) % n;
  if (seg == 0 || seg >= bytes) seg = bytes;
  const int n_segs = static_cast<int>((bytes + seg - 1) / seg);
  auto* p = static_cast<std::byte*>(buf);
  const int prev = vr > 0 ? (vr - 1 + root) % n : -1;
  const int next = vr + 1 < n ? (vr + 1 + root) % n : -1;

  p2p::Fabric::SendHandle pending{};
  bool have_pending = false;
  for (int k = 0; k < n_segs; ++k) {
    const std::size_t lo = static_cast<std::size_t>(k) * seg;
    const std::size_t len = std::min(seg, bytes - lo);
    if (prev >= 0) fabric_.recv(ctx, prev, tag0 + k, p + lo, len);
    if (next >= 0) {
      if (k == 0) record_traffic(ctx.rank(), next);
      p2p::Fabric::SendHandle h =
          fabric_.isend(ctx, next, tag0 + k, p + lo, len);
      if (have_pending) fabric_.wait_send(ctx, pending);
      pending = h;
      have_pending = true;
    }
  }
  if (have_pending) fabric_.wait_send(ctx, pending);
}

void TunedComponent::bcast_binary(mach::Ctx& ctx, void* buf,
                                  std::size_t bytes, int root,
                                  std::size_t seg, int tag0) {
  const int n = ctx.size();
  const int vr = (ctx.rank() - root + n) % n;
  if (seg == 0 || seg >= bytes) seg = bytes;
  const int n_segs = static_cast<int>((bytes + seg - 1) / seg);
  auto* p = static_cast<std::byte*>(buf);
  const int parent = vr > 0 ? ((vr - 1) / 2 + root) % n : -1;
  const int c1 = 2 * vr + 1 < n ? (2 * vr + 1 + root) % n : -1;
  const int c2 = 2 * vr + 2 < n ? (2 * vr + 2 + root) % n : -1;

  std::vector<p2p::Fabric::SendHandle> prev_handles;
  for (int k = 0; k < n_segs; ++k) {
    const std::size_t lo = static_cast<std::size_t>(k) * seg;
    const std::size_t len = std::min(seg, bytes - lo);
    if (parent >= 0) fabric_.recv(ctx, parent, tag0 + k, p + lo, len);
    std::vector<p2p::Fabric::SendHandle> cur;
    if (c1 >= 0) {
      if (k == 0) record_traffic(ctx.rank(), c1);
      cur.push_back(fabric_.isend(ctx, c1, tag0 + k, p + lo, len));
    }
    if (c2 >= 0) {
      if (k == 0) record_traffic(ctx.rank(), c2);
      cur.push_back(fabric_.isend(ctx, c2, tag0 + k, p + lo, len));
    }
    for (auto& h : prev_handles) fabric_.wait_send(ctx, h);
    prev_handles = std::move(cur);
  }
  for (auto& h : prev_handles) fabric_.wait_send(ctx, h);
}

void TunedComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                           int root) {
  if (bytes == 0 || ctx.size() == 1) return;
  XHC_TRACE(trace_sink(), ctx, "collective", "tuned.bcast", bytes);
  const int tag0 = static_cast<int>(
      ++op_seq_[static_cast<std::size_t>(ctx.rank())] * 65536);
  // Size-based decision rules in the style of coll/tuned: binomial for
  // small, segmented binomial for medium, segmented binary for large,
  // pipeline chain for the very largest.
  if (bytes <= 64 * 1024) {
    bcast_binomial(ctx, buf, bytes, root, /*seg=*/0, tag0);
  } else if (bytes <= 2 * 1024 * 1024) {
    bcast_binomial(ctx, buf, bytes, root, /*seg=*/32 * 1024, tag0);
  } else if (bytes <= 8 * 1024 * 1024) {
    bcast_binary(ctx, buf, bytes, root, /*seg=*/64 * 1024, tag0);
  } else {
    bcast_chain(ctx, buf, bytes, root, /*seg=*/128 * 1024, tag0);
  }
}

// ---------------------------------------------------------------------------
// Allreduce

void TunedComponent::allreduce_recursive_doubling(mach::Ctx& ctx, void* rbuf,
                                                  std::size_t count,
                                                  mach::DType dtype,
                                                  mach::ROp op, int tag0) {
  const int n = ctx.size();
  const int r = ctx.rank();
  const std::size_t bytes = count * mach::dtype_size(dtype);
  std::byte* tmp = scratch(ctx, bytes);
  const int p = pow2_floor(n);
  const int rem = n - p;

  // Fold the surplus ranks into the power-of-two set.
  int newrank;
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      fabric_.send(ctx, r + 1, tag0, rbuf, bytes);
      newrank = -1;
    } else {
      fabric_.recv(ctx, r - 1, tag0, tmp, bytes);
      {
        XHC_TRACE(trace_sink(), ctx, "reduce", "tuned.rd_reduce", bytes);
        ctx.reduce(rbuf, tmp, count, dtype, op);
      }
      book(ctx, obs::Counter::kReduceBytes, bytes);
      newrank = r / 2;
    }
  } else {
    newrank = r - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < p; mask <<= 1) {
      const int newpartner = newrank ^ mask;
      const int partner =
          newpartner < rem ? newpartner * 2 + 1 : newpartner + rem;
      fabric_.sendrecv(ctx, partner, rbuf, bytes, partner, tmp, bytes,
                       tag0 + 1 + mask);
      {
        XHC_TRACE(trace_sink(), ctx, "reduce", "tuned.rd_reduce", bytes);
        ctx.reduce(rbuf, tmp, count, dtype, op);
      }
      book(ctx, obs::Counter::kReduceBytes, bytes);
    }
  }

  // Unfold: surplus even ranks receive the final result.
  if (r < 2 * rem) {
    if (r % 2 == 0) {
      fabric_.recv(ctx, r + 1, tag0 + 2 * p, rbuf, bytes);
    } else {
      fabric_.send(ctx, r - 1, tag0 + 2 * p, rbuf, bytes);
    }
  }
}

void TunedComponent::allreduce_ring(mach::Ctx& ctx, void* rbuf,
                                    std::size_t count, mach::DType dtype,
                                    mach::ROp op, int tag0) {
  const int n = ctx.size();
  const int r = ctx.rank();
  const std::size_t elem = mach::dtype_size(dtype);
  auto* p = static_cast<std::byte*>(rbuf);
  const int next = (r + 1) % n;
  const int prev = (r - 1 + n) % n;
  std::size_t max_part = 0;
  for (int i = 0; i < n; ++i) {
    const auto [lo, hi] = ring_part(count, n, i);
    max_part = std::max(max_part, (hi - lo) * elem);
  }
  std::byte* tmp = scratch(ctx, max_part);

  // Reduce-scatter: after step s, rank r owns the fully reduced part
  // (r - n + 1 ... ). Standard ring schedule.
  for (int step = 0; step < n - 1; ++step) {
    const int send_part = (r - step + n) % n;
    const int recv_part = (r - step - 1 + n) % n;
    const auto [slo, shi] = ring_part(count, n, send_part);
    const auto [rlo, rhi] = ring_part(count, n, recv_part);
    fabric_.sendrecv(ctx, next, p + slo * elem, (shi - slo) * elem, prev, tmp,
                     (rhi - rlo) * elem, tag0 + step);
    {
      XHC_TRACE(trace_sink(), ctx, "reduce", "tuned.ring_reduce",
                (rhi - rlo) * elem);
      ctx.reduce(p + rlo * elem, tmp, rhi - rlo, dtype, op);
    }
    book(ctx, obs::Counter::kReduceBytes, (rhi - rlo) * elem);
  }
  // Allgather: circulate the finished parts.
  for (int step = 0; step < n - 1; ++step) {
    const int send_part = (r + 1 - step + n) % n;
    const int recv_part = (r - step + n) % n;
    const auto [slo, shi] = ring_part(count, n, send_part);
    const auto [rlo, rhi] = ring_part(count, n, recv_part);
    fabric_.sendrecv(ctx, next, p + slo * elem, (shi - slo) * elem, prev,
                     p + rlo * elem, (rhi - rlo) * elem,
                     tag0 + 1000 + step);
  }
}

void TunedComponent::reduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                            std::size_t count, mach::DType dtype,
                            mach::ROp op, int root) {
  if (count == 0) return;
  const std::size_t bytes = count * mach::dtype_size(dtype);
  if (sbuf != rbuf && sbuf != nullptr) ctx.copy(rbuf, sbuf, bytes);
  if (ctx.size() == 1) return;
  XHC_TRACE(trace_sink(), ctx, "collective", "tuned.reduce", bytes);
  const int n = ctx.size();
  const int vr = (ctx.rank() - root + n) % n;
  const int tag0 = static_cast<int>(
      ++op_seq_[static_cast<std::size_t>(ctx.rank())] * 65536);
  std::byte* tmp = scratch(ctx, bytes);
  // Binomial reduce: absorb partials from the children below each of our
  // zero bits, then forward the folded partial to the parent.
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int parent = (vr - mask + root) % n;
      fabric_.send(ctx, parent, tag0 + mask, rbuf, bytes);
      break;
    }
    const int child = vr + mask;
    if (child < n) {
      fabric_.recv(ctx, (child + root) % n, tag0 + mask, tmp, bytes);
      {
        XHC_TRACE(trace_sink(), ctx, "reduce", "tuned.reduce_fold", bytes);
        ctx.reduce(rbuf, tmp, count, dtype, op);
      }
      book(ctx, obs::Counter::kReduceBytes, bytes);
    }
    mask <<= 1;
  }
}

void TunedComponent::barrier(mach::Ctx& ctx) {
  const int n = ctx.size();
  if (n == 1) return;
  XHC_TRACE(trace_sink(), ctx, "collective", "tuned.barrier");
  const int r = ctx.rank();
  const int tag0 = static_cast<int>(
      ++op_seq_[static_cast<std::size_t>(r)] * 65536);
  // Dissemination barrier: after round k every rank has (transitively)
  // heard from 2^(k+1) predecessors.
  std::byte token[1] = {std::byte{1}};
  std::byte in[1];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (r + dist) % n;
    const int from = (r - dist + n) % n;
    fabric_.sendrecv(ctx, to, token, 1, from, in, 1, tag0 + round);
  }
}

void TunedComponent::allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                               std::size_t count, mach::DType dtype,
                               mach::ROp op) {
  if (count == 0) return;
  const std::size_t bytes = count * mach::dtype_size(dtype);
  if (sbuf != rbuf && sbuf != nullptr) {
    ctx.copy(rbuf, sbuf, bytes);
  }
  if (ctx.size() == 1) return;
  XHC_TRACE(trace_sink(), ctx, "collective", "tuned.allreduce", bytes);
  const int tag0 = static_cast<int>(
      ++op_seq_[static_cast<std::size_t>(ctx.rank())] * 65536);
  if (bytes <= 16 * 1024 ||
      count < static_cast<std::size_t>(2 * ctx.size())) {
    allreduce_recursive_doubling(ctx, rbuf, count, dtype, op, tag0);
  } else {
    allreduce_ring(ctx, rbuf, count, dtype, op, tag0);
  }
}

}  // namespace xhc::base
