#include "base/xbrc.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::base {

XbrcComponent::XbrcComponent(mach::Machine& machine, coll::Tuning tuning)
    : machine_(&machine),
      tuning_(std::move(tuning)),
      tree_(machine, /*sensitivity=*/{}) {
  ranks_.reserve(static_cast<std::size_t>(machine.n_ranks()));
  for (int r = 0; r < machine.n_ranks(); ++r) {
    auto rs = std::make_unique<RankState>();
    rs->endpoint = std::make_unique<smsc::Endpoint>(tuning_.mechanism,
                                                    tuning_.reg_cache);
    ranks_.push_back(std::move(rs));
  }
}

XbrcComponent::~XbrcComponent() = default;

std::optional<smsc::RegCache::Stats> XbrcComponent::reg_cache_stats() const {
  smsc::RegCache::Stats total;
  for (const auto& rs : ranks_) {
    total.hits += rs->endpoint->cache_stats().hits;
    total.misses += rs->endpoint->cache_stats().misses;
  }
  return total;
}

std::pair<std::size_t, std::size_t> XbrcComponent::partition(
    std::size_t count, int n, int i) {
  const std::size_t q = count / static_cast<std::size_t>(n);
  const std::size_t rem = count % static_cast<std::size_t>(n);
  const auto ui = static_cast<std::size_t>(i);
  const std::size_t lo = q * ui + std::min<std::size_t>(ui, rem);
  return {lo, lo + q + (ui < rem ? 1 : 0)};
}

void XbrcComponent::allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                              std::size_t count, mach::DType dtype,
                              mach::ROp op) {
  const std::size_t elem = mach::dtype_size(dtype);
  const std::size_t bytes = count * elem;
  if (count == 0) return;
  const bool in_place = (sbuf == rbuf || sbuf == nullptr);
  if (in_place) sbuf = rbuf;
  if (ctx.size() == 1) {
    if (!in_place) ctx.copy(rbuf, sbuf, bytes);
    return;
  }

  const int r = ctx.rank();
  const int n = ctx.size();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  core::GroupCtl& ctl = tree_.ctl(0);
  const auto* sp = static_cast<const std::byte*>(sbuf);
  auto* rp = static_cast<std::byte*>(rbuf);

  // Publish buffer addresses (guarded by member_seq).
  rs.endpoint->expose(ctx, sbuf, bytes);
  rs.endpoint->expose(ctx, rbuf, bytes);
  ctl.minfo[r]->contrib = sbuf;
  ctl.minfo[r]->result = rbuf;
  ctx.flag_store(*ctl.member_seq[r], s);

  // Reduce this rank's partition, reading every peer's sbuf directly.
  const auto [plo, phi] = partition(count, n, r);
  const std::size_t lo = plo * elem;
  const std::size_t len = (phi - plo) * elem;
  if (len > 0) {
    if (!in_place) ctx.copy(rp + lo, sp + lo, len);
    for (int j = 0; j < n; ++j) {
      if (j == r) continue;
      ctx.flag_wait_ge(*ctl.member_seq[j], s);
      const auto* peer = static_cast<const std::byte*>(rs.endpoint->attach(
          ctx, j, ctl.minfo[j]->contrib, bytes));
      rs.endpoint->charge_op(ctx, len, n);
      ctx.reduce(rp + lo, peer + lo, phi - plo, dtype, op);
      record_traffic(j, r);
    }
  }
  ctx.flag_store(*ctl.reduce_done[r], s);

  // All-gather: read every finished partition from its owner's rbuf.
  for (int j = 0; j < n; ++j) {
    if (j == r) continue;
    const auto [qlo, qhi] = partition(count, n, j);
    if (qlo == qhi) continue;
    ctx.flag_wait_ge(*ctl.reduce_done[j], s);
    const auto* peer = static_cast<const std::byte*>(rs.endpoint->attach(
        ctx, j, ctl.minfo[j]->result, bytes));
    rs.endpoint->charge_op(ctx, (qhi - qlo) * elem, n);
    ctx.copy(rp + qlo * elem, peer + qlo * elem, (qhi - qlo) * elem);
  }

  // Completion: nobody may reuse buffers until all peers finished reading.
  ctx.flag_store(*ctl.ack[r], s);
  for (int j = 0; j < n; ++j) {
    if (j != r) ctx.flag_wait_ge(*ctl.ack[j], s);
  }
  rs.bytes_base += bytes;
}

void XbrcComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                          int root) {
  if (bytes == 0 || ctx.size() == 1) return;
  const int r = ctx.rank();
  const int n = ctx.size();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  core::GroupCtl& ctl = tree_.ctl(0);

  // The mailbox is the root's own slot (flat group: slot index == rank), so
  // rotating roots never share one: root N+1 publishing cannot clobber the
  // pointer a straggler of root N's bcast has yet to read, and every slot
  // keeps a single fixed writer for the ledger.
  if (r == root) {
    rs.endpoint->expose(ctx, buf, bytes);
    ctl.info[root]->buf = buf;
    ctx.flag_store(*ctl.seq[root], s);
    ctx.flag_store(*ctl.announce[root], rs.bytes_base + bytes);
    for (int j = 0; j < n; ++j) {
      if (j != root) ctx.flag_wait_ge(*ctl.ack[j], s);
    }
  } else {
    ctx.flag_wait_ge(*ctl.seq[root], s);
    ctx.flag_wait_ge(*ctl.announce[root], rs.bytes_base + bytes);
    const void* src =
        rs.endpoint->attach(ctx, root, ctl.info[root]->buf, bytes);
    rs.endpoint->charge_op(ctx, bytes, n);
    ctx.copy(buf, src, bytes);
    record_traffic(root, r);
    ctx.flag_store(*ctl.ack[r], s);
  }
  rs.bytes_base += bytes;
}

}  // namespace xhc::base
