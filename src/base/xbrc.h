// XBRC — XPMEM-Based Reduction Collectives, the re-implementation of
// Hashmi et al., IPDPS'18 [5] (paper §V-C).
//
// A *flat* shared-address-space allreduce: the payload is partitioned across
// ranks; each rank reduces its own partition by reading every peer's send
// buffer directly through XPMEM (truly single-copy reduction), then all
// ranks gather the finished partitions by reading each owner's result
// buffer. No topology awareness — the reason it trails XHC-tree on large
// multi-NUMA systems (Fig. 11).
//
// A flat single-copy broadcast is provided for API completeness (the
// original design covers Reduce/Allreduce only; the paper's bcast figures
// accordingly exclude XBRC).
#pragma once

#include <memory>
#include <vector>

#include "coll/component.h"
#include "core/comm_tree.h"
#include "smsc/endpoint.h"

namespace xhc::base {

class XbrcComponent final : public coll::Component {
 public:
  XbrcComponent(mach::Machine& machine, coll::Tuning tuning);
  ~XbrcComponent() override;

  std::string_view name() const noexcept override { return "xbrc"; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes, int root) override;
  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype, mach::ROp op) override;

  std::optional<smsc::RegCache::Stats> reg_cache_stats() const override;

 private:
  struct RankState {
    std::uint64_t op_seq = 0;
    std::uint64_t bytes_base = 0;  ///< cumulative payload bytes
    std::unique_ptr<smsc::Endpoint> endpoint;
  };
  RankState& state(int rank) { return *ranks_[static_cast<std::size_t>(rank)]; }

  /// Element range of partition `i` over `count` elements.
  static std::pair<std::size_t, std::size_t> partition(std::size_t count,
                                                       int n, int i);

  mach::Machine* machine_;
  coll::Tuning tuning_;
  core::CommTree tree_;  ///< flat: one group holding every rank
  std::vector<std::unique_ptr<RankState>> ranks_;
};

}  // namespace xhc::base
