// `ucc` baseline — a model of the Unified Collective Communication library
// (paper §V-C): a competent conventional design with XPMEM single-copy
// transfers and static socket-level trees, but
//   * no NUMA/L3 awareness below the socket level (its static schedules are
//     "not the best fit to the underlying physical topology", §V-D1),
//   * coarser pipelining, and
//   * a per-operation library dispatch overhead.
//
// Implemented as a socket-sensitivity configuration of the shared hierarchy
// machinery plus the dispatch constant, which gives UCC exactly the paper's
// relative standing: strong at medium/large sizes (it is the closest
// competitor to XHC between 128 KB and 1 MB, Fig. 11), weaker for small
// messages and on the SLC-based ARM system.
#pragma once

#include <memory>

#include "coll/component.h"
#include "core/xhc_component.h"

namespace xhc::base {

class UccComponent final : public coll::Component {
 public:
  UccComponent(mach::Machine& machine, coll::Tuning tuning);

  std::string_view name() const noexcept override { return "ucc"; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes, int root) override;
  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype, mach::ROp op) override;

  std::optional<smsc::RegCache::Stats> reg_cache_stats() const override;

  void set_traffic_counter(p2p::TrafficCounter* counter) noexcept override {
    inner_->set_traffic_counter(counter);
  }

 private:
  /// Per-operation library dispatch cost (team lookup, task scheduling).
  static constexpr double kDispatchOverhead = 1.2e-6;

  std::unique_ptr<core::XhcComponent> inner_;
};

}  // namespace xhc::base
