// Shared-memory copy-in-copy-out collectives — the common machinery behind
// two baselines from the paper:
//
//   * `sm`   — OpenMPI's shared-memory component: a flat tree whose ring
//     acknowledgements use atomic fetch-add, the synchronization style whose
//     collapse on dense nodes the paper demonstrates (Fig. 4, §V-D1).
//   * `smhc` — Shared-Memory Hierarchical Collectives, the re-implementation
//     of Jain et al. [18]: socket-aware trees (plus a flat variant), bounded
//     shared rings, single-writer flags.
//
// All payload moves copy-in-copy-out through bounded rings: the leader of a
// group streams chunks into its ring, members copy them out (two copies per
// hierarchy level — the overhead single-copy designs avoid, §I). Allreduce
// gathers members' contributions through per-member ring areas at the
// leader, which reduces them serially (the leader-based reduction of [18]).
#pragma once

#include <string>

#include "coll/component.h"
#include "core/comm_tree.h"
#include "fault/fault.h"

namespace xhc::base {

class ShmComponent final : public coll::Component {
 public:
  /// `sync` selects per-member single-writer acks vs shared fetch-add
  /// counters; `sensitivity` "" / "flat" builds the flat variant.
  ShmComponent(mach::Machine& machine, coll::Tuning tuning, std::string name);
  ~ShmComponent() override;

  std::string_view name() const noexcept override { return name_; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes, int root) override;
  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype, mach::ROp op) override;

  /// Ring slot size actually in use. Equals the 32 KiB default unless
  /// injected shm exhaustion degraded the rings to smaller slots.
  std::size_t slot_bytes() const noexcept { return slot_; }
  /// Shared-segment allocation retries performed during construction.
  std::uint64_t shm_retries() const noexcept { return shm_retries_; }

 private:
  static constexpr std::size_t kDefaultSlot = 32 * 1024;  ///< ring slot bytes
  static constexpr std::uint64_t kDepth = 8;      ///< ring slots per stream

  /// Shared state of one group's ring streams.
  struct GroupShm;
  /// Per-rank mirrored counters.
  struct RankState;

  GroupShm& shm(int ctl_id) { return *groups_[static_cast<std::size_t>(ctl_id)]; }
  RankState& state(int rank) { return *ranks_[static_cast<std::size_t>(rank)]; }

  /// Allocates every group's rings at the current slot_ size. Returns false
  /// when an allocation failed (injected exhaustion) so the caller can
  /// degrade to smaller slots and rebuild.
  bool build_groups();

  /// Operation-entry straggler opportunity (fault injection).
  void maybe_stall(mach::Ctx& ctx);

  /// Leader side: wait until ring slot for the chunk ending at `hi` is free.
  void ring_wait_free(mach::Ctx& ctx, GroupShm& g,
                      const core::CommView::Membership& m, std::uint64_t base,
                      std::size_t lo, std::size_t bytes);
  /// Member side: acknowledge consumption of the chunk [lo, hi).
  void ring_ack(mach::Ctx& ctx, GroupShm& g, const core::CommView::Membership& m,
                std::uint64_t base, std::size_t lo, std::size_t hi);
  /// Advances the mirrored per-slot atomic ack counters after an operation
  /// that streamed `n_chunks` chunks through every group ring.
  void advance_ctr_base(RankState& rs, const core::CommView& view,
                        std::size_t n_chunks);

  mach::Machine* machine_;
  coll::Tuning tuning_;
  std::string name_;
  core::CommTree tree_;
  std::unique_ptr<fault::Injector> fault_;
  std::size_t slot_ = kDefaultSlot;
  std::uint64_t shm_retries_ = 0;
  std::vector<std::unique_ptr<GroupShm>> groups_;
  std::vector<std::unique_ptr<RankState>> ranks_;
};

}  // namespace xhc::base
