// Nested shard schedule of the large-message allreduce (DESIGN.md
// § Large-message paths).
//
// The latency path concentrates every byte of reduction and fan-out on one
// leader per level; a flat Rabenseifner reduce-scatter spreads the work but
// floods the shared cross-socket link (every shard crosses it once per
// reader). This schedule does the paper-faithful middle: at each hierarchy
// level, the payload range a rank owns is sub-sharded among that level's
// *domains*, so every read stays inside the smallest domain that contains
// both ends — full-payload traffic never leaves a NUMA node, and only
// 1/(socket width) of the payload crosses the socket link, once.
//
// Stage k of rank r reduces `range_k = partition(range_{k-1}, m_k, c_k(r))`,
// reading the same range from one peer per sibling child-domain of its
// level-k domain; the peers are the ranks at r's own "address" (digit path)
// inside each sibling. Because sibling domains are isomorphic on every
// supported topology, peers own byte-identical ranges and the whole
// schedule is computable by any rank for any rank — which is what lets a
// single cumulative progress flag per rank synchronize the entire pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/comm_tree.h"

namespace xhc::core {

/// Element range [lo, hi).
struct ElemRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const noexcept { return hi - lo; }
};

/// Contiguous i-th of n pieces of `parent`, remainder spread over the low
/// pieces (XBRC's split, lifted to subranges).
ElemRange partition(ElemRange parent, std::size_t n, std::size_t i);

/// One level of the nested reduce-scatter.
struct ShardStage {
  /// Owners of `parent` across the level's child domains, ascending by
  /// child-domain order; peers[my_idx] is the rank itself.
  std::vector<int> peers;
  int my_idx = 0;
  ElemRange parent;  ///< range owned before this stage (shared by all peers)
  ElemRange range;   ///< partition(parent, peers.size(), my_idx)
};

/// Per-rank schedule plus the progress-flag timeline. The timeline divides
/// a rank's `prog` flag into 2L slots of `bytes` each: RS stage k occupies
/// slot k, allgather stage u (executed u = L-1 .. 0) occupies slot
/// L + (L-1-u). Within an RS slot the flag advances by bytes produced; at
/// every slot boundary it snaps to `base + (slot+1) * bytes`, so peers
/// compute exact wait thresholds without knowing each other's deeper digit
/// paths (ranges can differ by partition remainders, slots cannot).
struct ShardSchedule {
  std::vector<ShardStage> stages;  ///< innermost (level 0) first
  std::size_t bytes = 0;           ///< payload bytes (slot width)

  int n_stages() const noexcept { return static_cast<int>(stages.size()); }
  /// prog value at the *start* of RS stage k.
  std::uint64_t rs_slot(int k) const noexcept {
    return static_cast<std::uint64_t>(k) * bytes;
  }
  /// prog value at the *start* of allgather stage u.
  std::uint64_t ag_slot(int u) const noexcept {
    const auto l = static_cast<std::uint64_t>(stages.size());
    return (l + (l - 1 - static_cast<std::uint64_t>(u))) * bytes;
  }
  /// Total prog advance of one operation: 2 * L * bytes.
  std::uint64_t total() const noexcept {
    return 2 * static_cast<std::uint64_t>(stages.size()) * bytes;
  }
};

/// Root-independent schedule factory for one communicator tree. Built once;
/// `schedule()` is then a cheap per-op computation.
class ShardPlan {
 public:
  explicit ShardPlan(const CommTree& tree);

  /// True when every level's domains are pairwise isomorphic (equal child
  /// counts level by level), which the nested partition requires to align
  /// peer shards. False routes large payloads back to the latency path.
  bool uniform() const noexcept { return uniform_; }
  int n_stages() const noexcept { return static_cast<int>(children_.size()); }

  /// The schedule of `rank` for a `count`-element payload. Requires
  /// uniform().
  ShardSchedule schedule(int rank, std::size_t count, std::size_t elem) const;

 private:
  /// Rank at digit path d[0..l] inside the level-l group `g`.
  int resolve(int l, int g, const std::vector<int>& digits) const;

  bool uniform_ = false;
  /// children_[0][g] = ranks of leaf group g; children_[l][g] = level-(l-1)
  /// group indices inside level-l group g. All lists ascending.
  std::vector<std::vector<std::vector<int>>> children_;
  /// group_of_[l][rank] = index of the level-l group whose domain holds rank.
  std::vector<std::vector<int>> group_of_;
  /// child_pos_[l][rank] = rank's child index inside its level-l group
  /// (digit d_l of its address).
  std::vector<std::vector<int>> child_pos_;
};

}  // namespace xhc::core
