#include "core/ctl.h"

#include <new>
#include <string>

#include "util/check.h"
#include "verify/layout.h"

namespace xhc::core {

namespace {

constexpr std::size_t kLine = util::kCacheLine;

std::size_t round_line(std::size_t n) {
  return (n + kLine - 1) / kLine * kLine;
}

template <typename T>
T* place_array(std::byte* base, std::size_t& offset, std::size_t count) {
  T* p = reinterpret_cast<T*>(base + offset);
  for (std::size_t i = 0; i < count; ++i) new (p + i) T();
  offset += round_line(sizeof(T) * count);
  return p;
}

}  // namespace

CtlArena::~CtlArena() {
  // Flags and info structs are trivially destructible; just release memory.
  for (auto& a : allocations_) {
    if (a.machine != nullptr && a.p != nullptr) a.machine->free(a.p);
  }
}

GroupCtl CtlArena::add_group(mach::Machine& m, int home_rank, int slots,
                             const std::string& scope) {
  XHC_REQUIRE(slots > 0, "group needs at least one slot");
  const auto n = static_cast<std::size_t>(slots);

  // Layout: leader-slot arrays, then per-member arrays, then variant areas.
  const std::size_t bytes =
      round_line(sizeof(util::CachePadded<mach::Flag>)) +  // atomic_ctr
      round_line(sizeof(util::CachePadded<mach::Flag>) * n) * 7 +  // seq,
          // announce, ack, member_seq, reduce_ready, reduce_done,
          // announce_sep
      round_line(sizeof(util::CachePadded<LeaderInfo>) * n) +
      round_line(sizeof(util::CachePadded<MemberInfo>) * n) +
      round_line(sizeof(mach::Flag) * n);  // announce_shared (packed)

  void* raw = m.alloc(home_rank, bytes, kLine);
  allocations_.push_back({&m, raw});
  total_bytes_ += bytes;
  auto* base = static_cast<std::byte*>(raw);
  std::size_t offset = 0;

  GroupCtl ctl;
  ctl.slots = slots;
  ctl.seq = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.announce = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.atomic_ctr = place_array<util::CachePadded<mach::Flag>>(base, offset, 1);
  ctl.info = place_array<util::CachePadded<LeaderInfo>>(base, offset, n);
  ctl.ack = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.member_seq = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.minfo = place_array<util::CachePadded<MemberInfo>>(base, offset, n);
  ctl.reduce_ready =
      place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.reduce_done =
      place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.announce_sep =
      place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.announce_shared = place_array<mach::Flag>(base, offset, n);
  XHC_CHECK(offset <= bytes, "control block layout overflow: ", offset, " > ",
            bytes);

  // Protocol verifier: name every flag, declare its writer policy (the
  // Fig. 4 atomic_ctr is the whitelisted multi-writer) and lint the layout.
  // The index keys diagnostics; addresses disambiguate across arenas.
  verify::register_group_ctl(
      m.verify_ledger(), m.topology(), ctl,
      scope + "ctl" + std::to_string(allocations_.size() - 1) + "/h" +
          std::to_string(home_rank));
  return ctl;
}

ShardCtl CtlArena::add_shard_plane(mach::Machine& m, int slots,
                                   const std::string& scope) {
  XHC_REQUIRE(slots > 0, "shard plane needs at least one slot");
  const auto n = static_cast<std::size_t>(slots);

  const std::size_t bytes =
      round_line(sizeof(util::CachePadded<mach::Flag>) * n) * 3 +  // shard_seq,
          // prog, stripe_ready
      round_line(sizeof(util::CachePadded<MemberInfo>) * n);

  void* raw = m.alloc(0, bytes, kLine);
  allocations_.push_back({&m, raw});
  total_bytes_ += bytes;
  auto* base = static_cast<std::byte*>(raw);
  std::size_t offset = 0;

  ShardCtl ctl;
  ctl.slots = slots;
  ctl.shard_seq = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.sinfo = place_array<util::CachePadded<MemberInfo>>(base, offset, n);
  ctl.prog = place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  ctl.stripe_ready =
      place_array<util::CachePadded<mach::Flag>>(base, offset, n);
  XHC_CHECK(offset <= bytes, "shard plane layout overflow: ", offset, " > ",
            bytes);

  verify::register_shard_ctl(m.verify_ledger(), m.topology(), ctl,
                             scope + "shards");
  return ctl;
}

}  // namespace xhc::core
