#include "core/xhc_component.h"

#include <algorithm>

#include "topo/hierarchy.h"
#include "util/check.h"

namespace xhc::core {

XhcComponent::XhcComponent(mach::Machine& machine, coll::Tuning tuning,
                           std::string name)
    : machine_(&machine),
      tuning_(std::move(tuning)),
      name_(std::move(name)),
      tree_(machine, topo::parse_sensitivity(tuning_.sensitivity),
            tuning_.comm_name) {
  const int n = machine.n_ranks();
  fault_ = fault::make_injector(tuning_.faults, tuning_.fault_seed, n,
                                tuning_.comm_id);
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto rs = std::make_unique<RankState>();
    rs->bcast_base.assign(static_cast<std::size_t>(tree_.n_groups()), 0);
    rs->reduce_base.assign(static_cast<std::size_t>(tree_.n_groups()), 0);
    rs->endpoint = std::make_unique<smsc::Endpoint>(
        tuning_.mechanism, tuning_.reg_cache, tuning_.reg_cache_entries);
    rs->endpoint->set_fault_injector(fault_.get());
    ranks_.push_back(std::move(rs));
  }
  // Copy-in-copy-out segments (paper §IV-C): one per rank, allocated at
  // communicator creation, attached (cached) for the communicator lifetime.
  // Under injected shm exhaustion each allocation is retried a bounded
  // number of times; when a rank's segment still cannot be allocated the
  // whole pool is rebuilt at half the size (threshold clamped to match),
  // down to a one-page floor — beyond that the failure is raised as a
  // diagnostic rather than silently degrading further.
  XHC_REQUIRE(tuning_.cico_segment_bytes >= 2 * tuning_.cico_threshold,
              "CICO segment must hold a contribution and a result area");
  constexpr std::size_t kMinSegment = 4096;
  std::size_t seg_bytes = tuning_.cico_segment_bytes;
  for (;;) {
    cico_bufs_.clear();
    cico_bufs_.reserve(static_cast<std::size_t>(n));
    bool ok = true;
    for (int r = 0; r < n && ok; ++r) {
      void* p = fault::alloc_with_retry(machine, fault_.get(), r, seg_bytes,
                                        /*zero=*/true, /*max_attempts=*/3,
                                        &shm_retries_);
      if (p == nullptr) {
        ok = false;
      } else {
        cico_bufs_.emplace_back(machine, p, seg_bytes);
      }
    }
    if (ok) break;
    XHC_CHECK(seg_bytes / 2 >= kMinSegment,
              name_, ": CICO segment allocation exhausted (failed even at ",
              seg_bytes, " bytes after ", shm_retries_, " retries)");
    cico_bufs_.clear();
    seg_bytes /= 2;
  }
  if (seg_bytes != tuning_.cico_segment_bytes) {
    tuning_.cico_segment_bytes = seg_bytes;
    tuning_.cico_threshold = std::min(tuning_.cico_threshold, seg_bytes / 2);
  }
  cico_.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    CicoSeg& seg = cico_[static_cast<std::size_t>(r)];
    seg.half_bytes = seg_bytes / 2;
    seg.contrib = cico_bufs_[static_cast<std::size_t>(r)].bytes();
    seg.result = seg.contrib + seg.half_bytes;
  }
}

XhcComponent::~XhcComponent() = default;

void XhcComponent::barrier(mach::Ctx& ctx) {
  if (ctx.size() == 1) return;
  XHC_TRACE(trace_sink(), ctx, "collective", "xhc.barrier");
  const int r = ctx.rank();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  const CommView& view = tree_.view(0);
  const auto& ms = view.memberships(r);

  // Arrival gather, bottom-up: a leader joins its upper group only after
  // every member of its own group has arrived, so arrival is transitive.
  for (const auto& m : ms) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    const GroupShape& shape = tree_.shape(m.ctl_id);
    if (m.is_leader) {
      for (const int j : m.members) {
        if (j == r) continue;
        WaitObs obs(*this, ctx, "member_seq_wait", m.level, j);
        ctx.flag_wait_ge(*ctl.member_seq[shape.slot_of(j)], s);
      }
    } else {
      ctx.flag_store(*ctl.member_seq[m.my_slot], s);
    }
  }

  // Release, top-down through the announce counters (one "byte" per
  // barrier keeps them monotone).
  const CommView::Membership& top = ms.back();
  if (top.is_leader) {
    for (const auto& m : ms) {
      announce_publish(
          ctx, m, rs.bcast_base[static_cast<std::size_t>(m.ctl_id)] + 1);
    }
  } else {
    announce_wait(ctx, top,
                  rs.bcast_base[static_cast<std::size_t>(top.ctl_id)] + 1);
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      announce_publish(
          ctx, ms[i],
          rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)] + 1);
    }
  }
  for (auto& b : rs.bcast_base) b += 1;
}

void XhcComponent::set_observer(obs::Observer* observer) noexcept {
  // Tuning::trace gates all collection: without it the pointer is dropped
  // and every span/counter site stays a null check.
  coll::Component::set_observer(tuning_.trace ? observer : nullptr);
  obs::Observer* effective = coll::Component::observer();
  // Histograms ride on the same Observer but have their own knob; without
  // it every HistTimer / WaitObs histogram site stays a null check.
  hist_ = effective != nullptr && tuning_.hist ? &effective->hists() : nullptr;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r]->endpoint->set_observer(effective, static_cast<int>(r));
  }
  if (effective != nullptr) {
    obs::Metrics& m = effective->metrics();
    m.set_gauge(obs::Gauge::kCtlBytes, tree_.arena().total_bytes());
    m.set_gauge(obs::Gauge::kCtlGroups,
                static_cast<std::uint64_t>(tree_.n_groups()));
    m.set_gauge(obs::Gauge::kCicoSegmentBytes, tuning_.cico_segment_bytes);
    if (shm_retries_ != 0) {
      // Setup-time retries happened before any observer existed; book them
      // against rank 0 now (called outside the parallel region).
      m.add(0, obs::Counter::kFaultShmRetries, shm_retries_);
      shm_retries_ = 0;
    }
  }
}

std::optional<smsc::RegCache::Stats> XhcComponent::reg_cache_stats() const {
  smsc::RegCache::Stats total;
  for (const auto& rs : ranks_) {
    total.hits += rs->endpoint->cache_stats().hits;
    total.misses += rs->endpoint->cache_stats().misses;
  }
  return total;
}

obs::Counter XhcComponent::pull_counter(const RankState& rs,
                                        int owner) const noexcept {
  switch (rs.endpoint->effective_mechanism(owner)) {
    case smsc::Mechanism::kXpmem:
      return obs::Counter::kSingleCopyBytes;
    case smsc::Mechanism::kCma:
    case smsc::Mechanism::kKnem:
      return obs::Counter::kCmaBytes;
    case smsc::Mechanism::kCico:
      break;
  }
  return obs::Counter::kCicoBytes;
}

void XhcComponent::announce_publish(mach::Ctx& ctx,
                                    const CommView::Membership& m,
                                    std::uint64_t value) {
  if (!fault_allows_publish(ctx)) return;
  GroupCtl& ctl = tree_.ctl(m.ctl_id);
  const GroupShape& shape = tree_.shape(m.ctl_id);
  switch (tuning_.flag_layout) {
    case coll::FlagLayout::kSingle:
      // The publisher is always m's current leader, so my_slot ==
      // leader_slot here; the slot index keeps the writer fixed across
      // root changes (see GroupCtl).
      ctx.flag_store(*ctl.announce[m.leader_slot], value);
      return;
    case coll::FlagLayout::kMultiSharedLine:
      for (const int j : m.members) {
        if (j == ctx.rank()) continue;
        ctx.flag_store(ctl.announce_shared[shape.slot_of(j)], value);
      }
      return;
    case coll::FlagLayout::kMultiSeparateLines:
      for (const int j : m.members) {
        if (j == ctx.rank()) continue;
        ctx.flag_store(*ctl.announce_sep[shape.slot_of(j)], value);
      }
      return;
  }
}

void XhcComponent::announce_wait(mach::Ctx& ctx,
                                 const CommView::Membership& m,
                                 std::uint64_t value) {
  WaitObs obs(*this, ctx, "announce_wait", m.level, m.leader);
  GroupCtl& ctl = tree_.ctl(m.ctl_id);
  switch (tuning_.flag_layout) {
    case coll::FlagLayout::kSingle:
      ctx.flag_wait_ge(*ctl.announce[m.leader_slot], value);
      return;
    case coll::FlagLayout::kMultiSharedLine:
      ctx.flag_wait_ge(ctl.announce_shared[m.my_slot], value);
      return;
    case coll::FlagLayout::kMultiSeparateLines:
      ctx.flag_wait_ge(*ctl.announce_sep[m.my_slot], value);
      return;
  }
}

void XhcComponent::ack_publish(mach::Ctx& ctx, const CommView::Membership& m,
                               std::uint64_t s) {
  if (!fault_allows_publish(ctx)) return;
  GroupCtl& ctl = tree_.ctl(m.ctl_id);
  if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
    ctx.flag_store(*ctl.ack[m.my_slot], s);
  } else {
    ctx.fetch_add(*ctl.atomic_ctr[0], 1);
  }
}

void XhcComponent::wait_acks(mach::Ctx& ctx, const CommView::Membership& m,
                             std::uint64_t s) {
  GroupCtl& ctl = tree_.ctl(m.ctl_id);
  const GroupShape& shape = tree_.shape(m.ctl_id);
  if (tuning_.sync == coll::SyncMethod::kSingleWriter) {
    // One wait span per member so the critical-path analyzer sees which
    // straggler the leader actually blocked on.
    for (const int j : m.members) {
      if (j == ctx.rank()) continue;
      WaitObs obs(*this, ctx, "wait_acks", m.level, j);
      ctx.flag_wait_ge(*ctl.ack[shape.slot_of(j)], s);
    }
  } else {
    // Atomic counter: contributions are anonymous, no single peer to name.
    WaitObs obs(*this, ctx, "wait_acks", m.level, /*peer=*/-1);
    const std::uint64_t expected =
        static_cast<std::uint64_t>(m.members.size() - 1) * s;
    ctx.flag_wait_ge(*ctl.atomic_ctr[0], expected);
  }
}

}  // namespace xhc::core
