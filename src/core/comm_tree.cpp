#include "core/comm_tree.h"

#include <algorithm>

#include "core/shard_schedule.h"
#include "util/check.h"

namespace xhc::core {

int GroupShape::slot_of(int rank) const {
  const auto it =
      std::lower_bound(domain_ranks.begin(), domain_ranks.end(), rank);
  if (it == domain_ranks.end() || *it != rank) return -1;
  return static_cast<int>(it - domain_ranks.begin());
}

CommTree::CommTree(mach::Machine& machine,
                   std::vector<topo::Domain> sensitivity, std::string scope)
    : machine_(&machine),
      sensitivity_(std::move(sensitivity)),
      scope_(std::move(scope)) {
  build_shapes();
  shard_ctl_ =
      arena_.add_shard_plane(*machine_, machine_->n_ranks(), scope_);
  shard_plan_ = std::make_unique<ShardPlan>(*this);
}

CommTree::~CommTree() = default;

void CommTree::build_shapes() {
  // The partition is root-independent; build it from the root-0 hierarchy.
  const topo::Hierarchy hier(machine_->topology(), machine_->map(),
                             sensitivity_, 0);
  n_levels_ = hier.n_levels();

  // domain_ranks are computed bottom-up: a level-l group can be joined by
  // any rank of any child group (whoever gets elected leader below).
  std::vector<std::vector<std::vector<int>>> domain(
      static_cast<std::size_t>(n_levels_));
  for (int l = 0; l < n_levels_; ++l) {
    const auto& groups = hier.level(l);
    domain[static_cast<std::size_t>(l)].resize(groups.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      std::vector<int>& ranks = domain[static_cast<std::size_t>(l)][gi];
      if (l == 0) {
        ranks = groups[gi].ranks;
      } else {
        for (const auto& child : hier.level(l - 1)) {
          // A child group feeds this group if its leader is a member here.
          if (std::binary_search(groups[gi].ranks.begin(),
                                 groups[gi].ranks.end(), child.leader)) {
            const auto& child_ranks =
                domain[static_cast<std::size_t>(l - 1)]
                      [static_cast<std::size_t>(child.id)];
            ranks.insert(ranks.end(), child_ranks.begin(), child_ranks.end());
          }
        }
        std::sort(ranks.begin(), ranks.end());
      }
    }
  }

  for (int l = 0; l < n_levels_; ++l) {
    const auto& groups = hier.level(l);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      GroupShape shape;
      shape.level = l;
      shape.index_in_level = static_cast<int>(gi);
      shape.ctl_id = static_cast<int>(shapes_.size());
      shape.domain_ranks = domain[static_cast<std::size_t>(l)][gi];
      shape.home_rank = shape.domain_ranks.front();
      ctls_.push_back(arena_.add_group(
          *machine_, shape.home_rank,
          static_cast<int>(shape.domain_ranks.size()), scope_));
      shapes_.push_back(std::move(shape));
    }
  }
}

std::unique_ptr<CommView> CommTree::build_view(int root) const {
  const topo::Hierarchy hier(machine_->topology(), machine_->map(),
                             sensitivity_, root);
  XHC_CHECK(hier.n_levels() == n_levels_,
            "hierarchy level count changed with root");

  auto view = std::make_unique<CommView>();
  view->root_ = root;
  view->n_levels_ = n_levels_;
  view->per_rank_.resize(static_cast<std::size_t>(machine_->n_ranks()));

  // ctl ids are level-major in shape build order, which matches the
  // hierarchy's per-level group indices (both sorted by domain id).
  std::vector<int> level_offset(static_cast<std::size_t>(n_levels_), 0);
  {
    int off = 0;
    for (int l = 0; l < n_levels_; ++l) {
      level_offset[static_cast<std::size_t>(l)] = off;
      off += static_cast<int>(hier.level(l).size());
    }
    XHC_CHECK(off == static_cast<int>(shapes_.size()),
              "group count changed with root");
  }

  for (int r = 0; r < machine_->n_ranks(); ++r) {
    auto& ms = view->per_rank_[static_cast<std::size_t>(r)];
    for (int l = 0; l < n_levels_; ++l) {
      const topo::Group* g = hier.group_of(l, r);
      if (g == nullptr) break;
      CommView::Membership m;
      m.level = l;
      m.ctl_id = level_offset[static_cast<std::size_t>(l)] + g->id;
      m.leader = g->leader;
      m.members = g->ranks;
      const GroupShape& shape = shapes_[static_cast<std::size_t>(m.ctl_id)];
      m.my_slot = shape.slot_of(r);
      m.leader_slot = shape.slot_of(g->leader);
      XHC_CHECK(m.my_slot >= 0 && m.leader_slot >= 0,
                "rank missing from group domain");
      m.is_leader = (g->leader == r);
      ms.push_back(std::move(m));
      if (!ms.back().is_leader) break;  // not a member above this level
    }
  }
  return view;
}

const CommView& CommTree::view(int root) {
  std::lock_guard<std::mutex> lock(views_mu_);
  auto it = views_.find(root);
  if (it == views_.end()) {
    it = views_.emplace(root, build_view(root)).first;
  }
  return *it->second;
}

}  // namespace xhc::core
