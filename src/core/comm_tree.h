// Communicator tree: hierarchy shapes, per-root views and control blocks.
//
// The *partition* of ranks into groups depends only on the topology and the
// sensitivity list, never on the operation root — only leader election does
// (the root leads every group it belongs to, paper §IV). CommTree therefore
// allocates one control block per (level, group) up front, sized for every
// rank that could ever be a member, and builds cheap per-root Views lazily.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ctl.h"
#include "mach/machine.h"
#include "topo/hierarchy.h"

namespace xhc::core {

class ShardPlan;

/// Root-independent description of one group.
struct GroupShape {
  int level = 0;
  int index_in_level = 0;
  int ctl_id = 0;                ///< index into CommTree::ctl()
  std::vector<int> domain_ranks; ///< sorted; every possible member
  int home_rank = 0;             ///< owns the control block allocation

  /// Slot of `rank` in the per-member arrays; -1 if not in the domain.
  int slot_of(int rank) const;
};

/// Per-root view: which groups a rank belongs to and who leads them.
class CommView {
 public:
  struct Membership {
    int level = 0;
    int ctl_id = 0;            ///< control block / shape id
    int leader = 0;            ///< leader rank for this root
    std::vector<int> members;  ///< actual members, ascending
    int my_slot = 0;           ///< this rank's slot in the shape
    int leader_slot = 0;       ///< leader's slot in the shape
    bool is_leader = false;
  };

  /// Groups `rank` participates in, ordered innermost level first. A rank
  /// appears at level l+1 only if it leads its level-l group; the last entry
  /// is the rank's "member level" (where it is a non-leader member), except
  /// for the root, which leads everything.
  const std::vector<Membership>& memberships(int rank) const {
    return per_rank_[static_cast<std::size_t>(rank)];
  }

  int root() const noexcept { return root_; }
  int n_levels() const noexcept { return n_levels_; }

 private:
  friend class CommTree;
  std::vector<std::vector<Membership>> per_rank_;
  int root_ = 0;
  int n_levels_ = 0;
};

class CommTree {
 public:
  /// Builds shapes and control blocks for `machine`'s rank map under the
  /// given sensitivity (empty = flat). `scope` prefixes every ledger flag
  /// name of the tree's control planes (see CtlArena::add_group); empty
  /// keeps the historical single-communicator names.
  CommTree(mach::Machine& machine, std::vector<topo::Domain> sensitivity,
           std::string scope = {});
  ~CommTree();  // out-of-line: ShardPlan is incomplete here

  int n_ranks() const noexcept { return machine_->n_ranks(); }
  int n_levels() const noexcept { return n_levels_; }
  int n_groups() const noexcept { return static_cast<int>(shapes_.size()); }

  const GroupShape& shape(int ctl_id) const {
    return shapes_[static_cast<std::size_t>(ctl_id)];
  }
  GroupCtl& ctl(int ctl_id) { return ctls_[static_cast<std::size_t>(ctl_id)]; }

  /// Per-root view; built on first use (thread-safe, deterministic).
  const CommView& view(int root);

  /// Large-message shard/stripe plane: one slot per global rank, written
  /// only by that rank regardless of root.
  ShardCtl& shard_ctl() noexcept { return shard_ctl_; }
  /// Root-independent nested shard schedule factory (large-message path).
  const ShardPlan& shard_plan() const noexcept { return *shard_plan_; }

  /// Arena accounting (observability gauges).
  const CtlArena& arena() const noexcept { return arena_; }

 private:
  void build_shapes();
  std::unique_ptr<CommView> build_view(int root) const;

  mach::Machine* machine_;
  std::vector<topo::Domain> sensitivity_;
  std::string scope_;
  int n_levels_ = 0;
  std::vector<GroupShape> shapes_;
  std::vector<GroupCtl> ctls_;
  ShardCtl shard_ctl_;
  std::unique_ptr<ShardPlan> shard_plan_;
  CtlArena arena_;

  std::mutex views_mu_;
  std::map<int, std::unique_ptr<CommView>> views_;
};

}  // namespace xhc::core
