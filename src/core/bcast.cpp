// XHC MPI_Bcast (paper §IV-A): hierarchical, pipelined, pull-based.
//
// The root exposes its buffer and publishes availability through the
// announce counter of every group it leads. Each other rank waits on its
// leader's counter, pulls chunks into its own buffer (single-copy via
// XPMEM, or via the leader's CICO result area for small messages), and —
// when it leads lower groups — republishes each chunk to its children.
// A hierarchical acknowledgement closes the operation so buffers and flags
// can be reused.
#include "core/xhc_component.h"

#include <algorithm>

#include "core/shard_schedule.h"
#include "util/check.h"

namespace xhc::core {

void XhcComponent::pull_bcast(mach::Ctx& ctx, const CommView& view,
                              void* user_buf, std::size_t bytes, bool cico,
                              std::uint64_t s) {
  const int r = ctx.rank();
  const auto& ms = view.memberships(r);
  const CommView::Membership& top = ms.back();
  XHC_CHECK(!top.is_leader, "pull_bcast called on the root");
  RankState& rs = state(r);
  GroupCtl& top_ctl = tree_.ctl(top.ctl_id);

  // Wait for the leader to join this op and publish its buffer. The wait is
  // exact: seq/info are indexed by the leader's slot, so a later op under a
  // different leader can never satisfy it or clobber the pointer (GroupCtl).
  {
    WaitObs obs(*this, ctx, "seq_wait", top.level, top.leader);
    ctx.flag_wait_ge(*top_ctl.seq[top.leader_slot], s);
  }
  const void* src;
  if (cico) {
    src = cico_[static_cast<std::size_t>(top.leader)].result;
  } else {
    const void* leader_buf = top_ctl.info[top.leader_slot]->buf;
    src = rs.endpoint->attach(ctx, top.leader, leader_buf, bytes);
  }

  // Destination this rank copies into: leaders stage into their own CICO
  // result area (their children read it); everyone else receives in place.
  const bool leads_any = ms.size() > 1;
  std::byte* dst =
      (cico && leads_any)
          ? cico_[static_cast<std::size_t>(r)].result
          : static_cast<std::byte*>(user_buf);

  const std::size_t chunk = std::max<std::size_t>(
      tuning_.chunk_for_level(top.level), 1);
  const std::uint64_t base = rs.bcast_base[static_cast<std::size_t>(
      top.ctl_id)];

  // Which counter the pulled bytes belong to: the CICO path is explicit,
  // and the single-copy path may have degraded per-owner (XPMEM→CMA→CICO,
  // DESIGN.md § Fault injection & degradation) — attribute CMA/KNEM bytes
  // to their own counter so the degradation traffic is visible in metrics.
  const obs::Counter copy_ctr =
      cico ? obs::Counter::kCicoBytes : pull_counter(rs, top.leader);

  for (std::size_t lo = 0; lo < bytes;) {
    const std::size_t hi = std::min(bytes, lo + chunk);
    HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
    maybe_stall(ctx, top.level);
    announce_wait(ctx, top, base + hi);
    rs.endpoint->charge_op(ctx, hi - lo, ctx.size(), cico ? -1 : top.leader);
    {
      XHC_TRACE(trace_sink(), ctx, "copy", "bcast.pull_chunk", hi - lo);
      ctx.copy(dst + lo, static_cast<const std::byte*>(src) + lo, hi - lo);
    }
    count_chunk(ctx, top.level);
    book(ctx, copy_ctr, hi - lo);
    // Republish to led groups (pipelining across levels, §III-B).
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      const std::uint64_t led_base =
          rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)];
      announce_publish(ctx, ms[i], led_base + hi);
    }
    lo = hi;
  }
  record_traffic(top.leader, r);

  if (cico && leads_any) {
    // Copy-out from the staged result into the user buffer.
    XHC_TRACE(trace_sink(), ctx, "copy", "bcast.cico_copy_out", bytes);
    ctx.copy(user_buf, dst, bytes);
  }

  // Hierarchical acknowledgement: collect children's acks, then ack upward.
  for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
    wait_acks(ctx, ms[i], s);
  }
  ack_publish(ctx, top, s);
}

void XhcComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                         int root) {
  if (bytes == 0 || ctx.size() == 1) return;
  XHC_REQUIRE(root >= 0 && root < ctx.size(), "bad root ", root);

  XHC_TRACE(trace_sink(), ctx, "collective", "xhc.bcast", bytes);
  HistTimer op_t(hist_sink(), ctx, obs::HistKind::kOp);
  maybe_stall(ctx, -1);  // operation-entry straggler opportunity (any level)
  const int r = ctx.rank();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  const CommView& view = tree_.view(root);
  const bool cico = bytes <= tuning_.cico_threshold;
  XHC_REQUIRE(!cico || bytes <= cico_[0].half_bytes,
              "CICO threshold exceeds segment half");
  const auto& ms = view.memberships(r);

  // Size-class dispatch (DESIGN.md § Large-message paths): top-level group
  // members stripe payloads strictly above the threshold across the whole
  // top group; everyone below the top level pulls through the unchanged
  // pipeline against the announces the striping leaders relay. Gated on
  // kSingleWriter: the root publishes an extra ack in the striped barrier,
  // which the fetch-add variant's (members-1)*s arithmetic cannot absorb.
  const CommView::Membership& outer = ms.back();
  if (!cico && tuning_.stripe_threshold > 0 &&
      bytes > tuning_.stripe_threshold &&
      tuning_.sync == coll::SyncMethod::kSingleWriter &&
      outer.level == tree_.n_levels() - 1 && outer.members.size() >= 2) {
    bcast_striped(ctx, view, buf, bytes, root, s);
    for (auto& b : rs.bcast_base) b += bytes;
    rs.stripe_base += bytes;
    return;
  }

  if (r == root) {
    const void* src = buf;
    if (cico) {
      // Copy-in: stage the payload in the root's CICO result area.
      XHC_TRACE(trace_sink(), ctx, "copy", "bcast.cico_copy_in", bytes);
      ctx.copy(cico_[static_cast<std::size_t>(r)].result, buf, bytes);
      book(ctx, obs::Counter::kCicoBytes, bytes);
      src = cico_[static_cast<std::size_t>(r)].result;
    } else {
      rs.endpoint->expose(ctx, buf, bytes);
    }
    // The root's data is fully available up front: join every led group and
    // publish the complete range at once (children still pull chunk-wise).
    for (const auto& m : ms) {
      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      ctl.info[m.my_slot]->buf = src;
      ctx.flag_store(*ctl.seq[m.my_slot], s);
      const std::uint64_t base =
          rs.bcast_base[static_cast<std::size_t>(m.ctl_id)];
      announce_publish(ctx, m, base + bytes);
    }
    for (const auto& m : ms) {
      wait_acks(ctx, m, s);
    }
  } else {
    // Join led groups first so children can start as soon as data flows.
    const void* my_pub =
        cico ? static_cast<const void*>(
                   cico_[static_cast<std::size_t>(r)].result)
             : static_cast<const void*>(buf);
    if (!cico && ms.size() > 1) {
      rs.endpoint->expose(ctx, buf, bytes);
    }
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      GroupCtl& ctl = tree_.ctl(ms[i].ctl_id);
      ctl.info[ms[i].my_slot]->buf = my_pub;
      ctx.flag_store(*ctl.seq[ms[i].my_slot], s);
    }
    pull_bcast(ctx, view, buf, bytes, cico, s);
  }

  // Advance the per-group cumulative byte bases (kept mirrored by every
  // rank; all ranks execute every collective, so the mirrors agree).
  // stripe_base advances on every bcast — striped or not — because the set
  // of striping ranks changes with the root, while the counter mirrors must
  // agree across any future top group.
  for (auto& b : rs.bcast_base) b += bytes;
  rs.stripe_base += bytes;
}

void XhcComponent::bcast_striped(mach::Ctx& ctx, const CommView& view,
                                 void* buf, std::size_t bytes, int root,
                                 std::uint64_t s) {
  const int r = ctx.rank();
  RankState& rs = state(r);
  ShardCtl& sc = tree_.shard_ctl();
  const auto& ms = view.memberships(r);
  const CommView::Membership& top = ms.back();
  const std::size_t width = top.members.size();
  const std::uint64_t sbase = rs.stripe_base;
  const std::size_t chunk =
      std::max<std::size_t>(tuning_.large_chunk_for_level(top.level), 1);
  const auto stripe_of = [&](std::size_t w) {
    return partition(ElemRange{0, bytes}, width, w);
  };

  rs.endpoint->expose(ctx, buf, bytes);

  if (r == root) {
    // The root's payload is fully available up front: join every led group
    // (lower groups run the standard full-range announce), publish the
    // buffer on the stripe plane, and mark the whole stripe timeline done —
    // owners pull their stripes without further handshakes.
    for (const auto& m : ms) {
      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      ctl.info[m.my_slot]->buf = buf;
      ctx.flag_store(*ctl.seq[m.my_slot], s);
      if (m.ctl_id != top.ctl_id) {
        announce_publish(
            ctx, m,
            rs.bcast_base[static_cast<std::size_t>(m.ctl_id)] + bytes);
      }
    }
    sc.sinfo[r]->result = buf;
    ctx.flag_store(*sc.shard_seq[r], s);
    ctx.flag_store(*sc.stripe_ready[r], sbase + bytes);
    // Ack the top group early — the root has no stripes to pull, and the
    // peers' all-to-all barrier below waits on every member's slot.
    ack_publish(ctx, top, s);
    for (const auto& m : ms) {
      if (m.ctl_id != top.ctl_id) wait_acks(ctx, m, s);
    }
    wait_acks(ctx, top, s);
    return;
  }

  // Non-root top-group member: publish the buffer to led groups and the
  // stripe plane first, so children and stripe readers can start as soon
  // as bytes land.
  for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
    GroupCtl& ctl = tree_.ctl(ms[i].ctl_id);
    ctl.info[ms[i].my_slot]->buf = buf;
    ctx.flag_store(*ctl.seq[ms[i].my_slot], s);
  }
  sc.sinfo[r]->result = buf;
  ctx.flag_store(*sc.shard_seq[r], s);

  std::byte* dst = static_cast<std::byte*>(buf);
  std::size_t my_pos = width;
  for (std::size_t w = 0; w < width; ++w) {
    if (top.members[w] == r) my_pos = w;
  }
  XHC_CHECK(my_pos < width, "rank missing from top group");

  {
    WaitObs obs(*this, ctx, "shard_seq_wait", top.level, root);
    ctx.flag_wait_ge(*sc.shard_seq[root], s);
  }
  const std::byte* root_src = static_cast<const std::byte*>(
      rs.endpoint->attach(ctx, root, sc.sinfo[root]->result, bytes));

  // Announce relay: led children pull contiguous prefixes, so republish
  // the longest fully-assembled prefix whenever it grows.
  std::vector<std::size_t> done(width, 0);
  std::size_t announced = 0;
  const auto relay = [&]() {
    std::size_t prefix = 0;
    for (std::size_t w = 0; w < width; ++w) {
      prefix = stripe_of(w).lo + done[w];
      if (done[w] < stripe_of(w).size()) break;
    }
    if (prefix <= announced) return;
    announced = prefix;
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      announce_publish(
          ctx, ms[i],
          rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)] + prefix);
    }
  };

  // Own stripe first — other members are waiting to read it from here.
  const ElemRange own = stripe_of(my_pos);
  for (std::size_t lo = own.lo; lo < own.hi;) {
    const std::size_t hi = std::min(own.hi, lo + chunk);
    maybe_stall(ctx, top.level);
    rs.endpoint->charge_op(ctx, hi - lo, ctx.size(), root);
    {
      XHC_TRACE(trace_sink(), ctx, "copy", "bcast.stripe_pull", hi - lo);
      HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
      ctx.copy(dst + lo, root_src + lo, hi - lo);
    }
    count_chunk(ctx, top.level);
    book(ctx, pull_counter(rs, root), hi - lo);
    ctx.flag_store(*sc.stripe_ready[r], sbase + (hi - own.lo));
    done[my_pos] = hi - own.lo;
    relay();
    lo = hi;
  }
  record_traffic(root, r);

  // Remaining stripes, ascending owner order, each from its owner (the
  // member that republished it) — spreading the load the pull path would
  // put entirely on the root's links.
  for (std::size_t w = 0; w < width; ++w) {
    if (w == my_pos) continue;
    const int owner = top.members[w];
    const ElemRange sw = stripe_of(w);
    if (sw.size() == 0) continue;
    const std::byte* src = root_src;
    if (owner != root) {
      WaitObs obs(*this, ctx, "shard_seq_wait", top.level, owner);
      ctx.flag_wait_ge(*sc.shard_seq[owner], s);
      src = static_cast<const std::byte*>(
          rs.endpoint->attach(ctx, owner, sc.sinfo[owner]->result, bytes));
    }
    const obs::Counter ctr = pull_counter(rs, owner);
    for (std::size_t lo = sw.lo; lo < sw.hi;) {
      const std::size_t hi = std::min(sw.hi, lo + chunk);
      maybe_stall(ctx, top.level);
      {
        WaitObs obs(*this, ctx, "stripe_ready_wait", top.level, owner);
        ctx.flag_wait_ge(*sc.stripe_ready[owner], sbase + (hi - sw.lo));
      }
      rs.endpoint->charge_op(ctx, hi - lo, ctx.size(), owner);
      {
        XHC_TRACE(trace_sink(), ctx, "copy", "bcast.stripe_pull", hi - lo);
        HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
        ctx.copy(dst + lo, src + lo, hi - lo);
      }
      count_chunk(ctx, top.level);
      book(ctx, ctr, hi - lo);
      done[w] = hi - sw.lo;
      relay();
      lo = hi;
    }
    record_traffic(owner, r);
  }
  // Cross-op snap: per-op thresholds never exceed base + bytes, and the
  // base advances by bytes on every bcast, so the flag stays monotone.
  ctx.flag_store(*sc.stripe_ready[r], sbase + bytes);

  // Completion: collect the led subtrees, then the top-group all-to-all
  // barrier — this rank's buffer is read by its children *and* by every
  // top peer assembling this rank's stripe.
  for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
    wait_acks(ctx, ms[i], s);
  }
  ack_publish(ctx, top, s);
  wait_acks(ctx, top, s);
}

}  // namespace xhc::core
