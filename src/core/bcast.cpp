// XHC MPI_Bcast (paper §IV-A): hierarchical, pipelined, pull-based.
//
// The root exposes its buffer and publishes availability through the
// announce counter of every group it leads. Each other rank waits on its
// leader's counter, pulls chunks into its own buffer (single-copy via
// XPMEM, or via the leader's CICO result area for small messages), and —
// when it leads lower groups — republishes each chunk to its children.
// A hierarchical acknowledgement closes the operation so buffers and flags
// can be reused.
#include "core/xhc_component.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::core {

void XhcComponent::pull_bcast(mach::Ctx& ctx, const CommView& view,
                              void* user_buf, std::size_t bytes, bool cico,
                              std::uint64_t s) {
  const int r = ctx.rank();
  const auto& ms = view.memberships(r);
  const CommView::Membership& top = ms.back();
  XHC_CHECK(!top.is_leader, "pull_bcast called on the root");
  RankState& rs = state(r);
  GroupCtl& top_ctl = tree_.ctl(top.ctl_id);

  // Wait for the leader to join this op and publish its buffer.
  {
    WaitObs obs(*this, ctx, "seq_wait", top.level, top.leader);
    ctx.flag_wait_ge(*top_ctl.seq[0], s);
  }
  const void* src;
  if (cico) {
    src = cico_[static_cast<std::size_t>(top.leader)].result;
  } else {
    const void* leader_buf = top_ctl.info[0]->buf;
    src = rs.endpoint->attach(ctx, top.leader, leader_buf, bytes);
  }

  // Destination this rank copies into: leaders stage into their own CICO
  // result area (their children read it); everyone else receives in place.
  const bool leads_any = ms.size() > 1;
  std::byte* dst =
      (cico && leads_any)
          ? cico_[static_cast<std::size_t>(r)].result
          : static_cast<std::byte*>(user_buf);

  const std::size_t chunk = std::max<std::size_t>(
      tuning_.chunk_for_level(top.level), 1);
  const std::uint64_t base = rs.bcast_base[static_cast<std::size_t>(
      top.ctl_id)];

  // Which counter the pulled bytes belong to: the CICO path is explicit,
  // and the single-copy path may have degraded per-owner (XPMEM→CMA→CICO,
  // DESIGN.md § Fault injection & degradation) — attribute CMA/KNEM bytes
  // to their own counter so the degradation traffic is visible in metrics.
  obs::Counter copy_ctr = obs::Counter::kCicoBytes;
  if (!cico) {
    switch (rs.endpoint->effective_mechanism(top.leader)) {
      case smsc::Mechanism::kXpmem:
        copy_ctr = obs::Counter::kSingleCopyBytes;
        break;
      case smsc::Mechanism::kCma:
      case smsc::Mechanism::kKnem:
        copy_ctr = obs::Counter::kCmaBytes;
        break;
      case smsc::Mechanism::kCico:
        copy_ctr = obs::Counter::kCicoBytes;
        break;
    }
  }

  for (std::size_t lo = 0; lo < bytes;) {
    const std::size_t hi = std::min(bytes, lo + chunk);
    HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
    maybe_stall(ctx, top.level);
    announce_wait(ctx, top, base + hi);
    rs.endpoint->charge_op(ctx, hi - lo, ctx.size(), cico ? -1 : top.leader);
    {
      XHC_TRACE(trace_sink(), ctx, "copy", "bcast.pull_chunk", hi - lo);
      ctx.copy(dst + lo, static_cast<const std::byte*>(src) + lo, hi - lo);
    }
    count_chunk(ctx, top.level);
    book(ctx, copy_ctr, hi - lo);
    // Republish to led groups (pipelining across levels, §III-B).
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      const std::uint64_t led_base =
          rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)];
      announce_publish(ctx, ms[i], led_base + hi);
    }
    lo = hi;
  }
  record_traffic(top.leader, r);

  if (cico && leads_any) {
    // Copy-out from the staged result into the user buffer.
    XHC_TRACE(trace_sink(), ctx, "copy", "bcast.cico_copy_out", bytes);
    ctx.copy(user_buf, dst, bytes);
  }

  // Hierarchical acknowledgement: collect children's acks, then ack upward.
  for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
    wait_acks(ctx, ms[i], s);
  }
  ack_publish(ctx, top, s);
}

void XhcComponent::bcast(mach::Ctx& ctx, void* buf, std::size_t bytes,
                         int root) {
  if (bytes == 0 || ctx.size() == 1) return;
  XHC_REQUIRE(root >= 0 && root < ctx.size(), "bad root ", root);

  XHC_TRACE(trace_sink(), ctx, "collective", "xhc.bcast", bytes);
  HistTimer op_t(hist_sink(), ctx, obs::HistKind::kOp);
  maybe_stall(ctx, -1);  // operation-entry straggler opportunity (any level)
  const int r = ctx.rank();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  const CommView& view = tree_.view(root);
  const bool cico = bytes <= tuning_.cico_threshold;
  XHC_REQUIRE(!cico || bytes <= cico_[0].half_bytes,
              "CICO threshold exceeds segment half");
  const auto& ms = view.memberships(r);

  if (r == root) {
    const void* src = buf;
    if (cico) {
      // Copy-in: stage the payload in the root's CICO result area.
      XHC_TRACE(trace_sink(), ctx, "copy", "bcast.cico_copy_in", bytes);
      ctx.copy(cico_[static_cast<std::size_t>(r)].result, buf, bytes);
      book(ctx, obs::Counter::kCicoBytes, bytes);
      src = cico_[static_cast<std::size_t>(r)].result;
    } else {
      rs.endpoint->expose(ctx, buf, bytes);
    }
    // The root's data is fully available up front: join every led group and
    // publish the complete range at once (children still pull chunk-wise).
    for (const auto& m : ms) {
      GroupCtl& ctl = tree_.ctl(m.ctl_id);
      ctl.info[0]->buf = src;
      ctx.flag_store(*ctl.seq[0], s);
      const std::uint64_t base =
          rs.bcast_base[static_cast<std::size_t>(m.ctl_id)];
      announce_publish(ctx, m, base + bytes);
    }
    for (const auto& m : ms) {
      wait_acks(ctx, m, s);
    }
  } else {
    // Join led groups first so children can start as soon as data flows.
    const void* my_pub =
        cico ? static_cast<const void*>(
                   cico_[static_cast<std::size_t>(r)].result)
             : static_cast<const void*>(buf);
    if (!cico && ms.size() > 1) {
      rs.endpoint->expose(ctx, buf, bytes);
    }
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      GroupCtl& ctl = tree_.ctl(ms[i].ctl_id);
      ctl.info[0]->buf = my_pub;
      ctx.flag_store(*ctl.seq[0], s);
    }
    pull_bcast(ctx, view, buf, bytes, cico, s);
  }

  // Advance the per-group cumulative byte bases (kept mirrored by every
  // rank; all ranks execute every collective, so the mirrors agree).
  for (auto& b : rs.bcast_base) b += bytes;
}

}  // namespace xhc::core
