// XHC — XPMEM-based Hierarchical Collectives (the paper's contribution).
//
// Implements MPI_Bcast (paper §IV-A) and MPI_Allreduce (§IV-B) directly over
// shared memory, with:
//   * an n-level topology-aware hierarchy (§III-A) or a flat tree,
//   * single-copy data movement through the smsc/XPMEM endpoint with a
//     registration cache (§III-C),
//   * a copy-in-copy-out path below a size threshold (§III-D, §IV-C),
//   * per-level chunked pipelining (§III-B),
//   * single-writer/multiple-readers control flags (§III-E), with the
//     alternative flag layouts and the atomic-fetch-add variant used by the
//     paper's Fig. 10 and Fig. 4 experiments.
#pragma once

#include <memory>
#include <string>

#include "coll/component.h"
#include "core/comm_tree.h"
#include "fault/fault.h"
#include "obs/critpath.h"
#include "obs/hist.h"
#include "smsc/endpoint.h"

namespace xhc::core {

class XhcComponent final : public coll::Component {
 public:
  /// `name` distinguishes configured variants ("xhc", "xhc-flat", ...).
  XhcComponent(mach::Machine& machine, coll::Tuning tuning,
               std::string name = "xhc");
  ~XhcComponent() override;

  std::string_view name() const noexcept override { return name_; }

  void bcast(mach::Ctx& ctx, void* buf, std::size_t bytes, int root) override;
  void allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                 std::size_t count, mach::DType dtype, mach::ROp op) override;

  /// Native MPI_Reduce (paper §VII, "ongoing work"): the allreduce's
  /// hierarchical reduction rooted at `root`, with the broadcast phase
  /// replaced by a flag-only completion release. `rbuf` must be valid on
  /// every rank (leaders accumulate subtree partials in it on the
  /// single-copy path).
  void reduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
              std::size_t count, mach::DType dtype, mach::ROp op,
              int root) override;

  /// Native MPI_Barrier (paper §VII): hierarchical arrival gather through
  /// the member_seq flags, release through the announce counters — no data
  /// movement, no atomics.
  void barrier(mach::Ctx& ctx) override;

  std::optional<smsc::RegCache::Stats> reg_cache_stats() const override;

  /// Attaches the observability sink (gated by Tuning::trace): plumbs it
  /// into every rank's smsc endpoint and publishes the control-plane gauges
  /// (control-block bytes, group count, CICO segment size).
  void set_observer(obs::Observer* observer) noexcept override;

  const coll::Tuning& tuning() const noexcept { return tuning_; }
  CommTree& tree() noexcept { return tree_; }

 private:
  /// Per-rank private state; one line-padded entry per rank.
  struct RankState {
    std::uint64_t op_seq = 0;
    std::vector<std::uint64_t> bcast_base;   ///< per group: cumulative bytes
                                             ///< published via announce
    std::vector<std::uint64_t> reduce_base;  ///< per group: cumulative bytes
                                             ///< through the reduce counters
    /// Base of the shard `prog` timeline; advances by 2 * levels * bytes
    /// per reduce-scatter+allgather op (mirrors agree because every rank
    /// takes the dispatch decision from the same size and tuning).
    std::uint64_t shard_base = 0;
    /// Base of the `stripe_ready` counters; advances by `bytes` on *every*
    /// bcast so the mirrors agree even though top-group membership (and so
    /// the set of striping ranks) changes with the root.
    std::uint64_t stripe_base = 0;
    std::unique_ptr<smsc::Endpoint> endpoint;
  };

  RankState& state(int rank) {
    return *ranks_[static_cast<std::size_t>(rank)];
  }

  // --- observability helpers -----------------------------------------------
  /// RAII around a blocking wait site: opens a "wait" span and differences
  /// the machine's spin counter into kFlagWaits / kFlagSpinIters. The span
  /// arg packs (level, peer) — which rank's publication is awaited — so the
  /// critical-path analyzer (obs/critpath.h) can follow the blocking edge;
  /// when histograms are on, the wait duration is also recorded into the
  /// kWaitSite histogram. Costs two branches when no observer is attached.
  class WaitObs {
   public:
    WaitObs(const XhcComponent& c, mach::Ctx& ctx, const char* name,
            int level = -1, int peer = -1) noexcept
        : o_(c.observer()),
          h_(c.hist_),
          ctx_(&ctx),
          guard_(o_ != nullptr ? &o_->trace() : nullptr, ctx, "wait", name,
                 obs::wait_arg(level, peer)),
          spins0_(o_ != nullptr ? ctx.wait_spins() : 0),
          t0_(h_ != nullptr ? ctx.now() : 0.0) {}
    ~WaitObs() {
      if (o_ != nullptr) {
        o_->metrics().add(ctx_->rank(), obs::Counter::kFlagWaits, 1);
        o_->metrics().add(ctx_->rank(), obs::Counter::kFlagSpinIters,
                          ctx_->wait_spins() - spins0_);
      }
      if (h_ != nullptr) {
        h_->record(ctx_->rank(), obs::HistKind::kWaitSite,
                   ctx_->now() - t0_);
      }
    }
    WaitObs(const WaitObs&) = delete;
    WaitObs& operator=(const WaitObs&) = delete;

   private:
    obs::Observer* o_;
    obs::HistSet* h_;
    mach::Ctx* ctx_;
    obs::SpanGuard guard_;
    std::uint64_t spins0_;
    double t0_;
  };

  /// RAII latency sample: records scope duration into one histogram kind of
  /// the attached HistSet. A null set reduces the guard to one branch.
  class HistTimer {
   public:
    HistTimer(obs::HistSet* h, mach::Ctx& ctx, obs::HistKind k) noexcept
        : h_(h), ctx_(&ctx), k_(k), t0_(h != nullptr ? ctx.now() : 0.0) {}
    ~HistTimer() {
      if (h_ != nullptr) h_->record(ctx_->rank(), k_, ctx_->now() - t0_);
    }
    HistTimer(const HistTimer&) = delete;
    HistTimer& operator=(const HistTimer&) = delete;

   private:
    obs::HistSet* h_;
    mach::Ctx* ctx_;
    obs::HistKind k_;
    double t0_;
  };

  /// Histogram sink; null unless an Observer is attached AND Tuning::hist
  /// is set (see set_observer).
  obs::HistSet* hist_sink() const noexcept { return hist_; }

  /// Books one pipeline chunk against the per-level chunk counters.
  void count_chunk(mach::Ctx& ctx, int level) const noexcept {
    switch (level) {
      case 0:
        book(ctx, obs::Counter::kChunksLevel0, 1);
        break;
      case 1:
        book(ctx, obs::Counter::kChunksLevel1, 1);
        break;
      case 2:
        book(ctx, obs::Counter::kChunksLevel2, 1);
        break;
      default:
        book(ctx, obs::Counter::kChunksDeeper, 1);
    }
  }

  // --- fault injection (Tuning::faults; null injector when unconfigured) ---
  /// Straggler opportunity at a (rank, hierarchy-level) boundary: books the
  /// stall and loses the injected time (virtual on Sim, real sleep on Real).
  void maybe_stall(mach::Ctx& ctx, int level) {
    if (fault_ == nullptr) return;
    const double d = fault_->straggler_delay(ctx.rank(), level);
    if (d <= 0.0) return;
    book(ctx, obs::Counter::kFaultStalls, 1);
    XHC_TRACE(trace_sink(), ctx, "fault", "straggler");
    ctx.stall(d);
  }

  /// Consults the injector before a flag publication. Returns false when the
  /// publication must be dropped (the caller skips the store); an injected
  /// delay has already been lost by then. Monotone cumulative counters make
  /// mid-operation drops survivable — a later, larger publication satisfies
  /// the same waiters; a dropped final publication leaves readers blocked
  /// until the watchdog (Real) or deadlock report (Sim) names the flag.
  bool fault_allows_publish(mach::Ctx& ctx) {
    if (fault_ == nullptr) return true;
    const fault::FlagAction a = fault_->on_publish(ctx.rank());
    if (a.delay > 0.0) {
      book(ctx, obs::Counter::kFaultFlagDelays, 1);
      XHC_TRACE(trace_sink(), ctx, "fault", "flag.delay");
      ctx.stall(a.delay);
    }
    if (a.drop) {
      book(ctx, obs::Counter::kFaultFlagDrops, 1);
      XHC_TRACE(trace_sink(), ctx, "fault", "flag.drop");
      return false;
    }
    return true;
  }

  // --- flag helpers (layout / sync variants) -------------------------------
  void announce_publish(mach::Ctx& ctx, const CommView::Membership& m,
                        std::uint64_t value);
  void announce_wait(mach::Ctx& ctx, const CommView::Membership& m,
                     std::uint64_t value);
  void ack_publish(mach::Ctx& ctx, const CommView::Membership& m,
                   std::uint64_t s);
  void wait_acks(mach::Ctx& ctx, const CommView::Membership& m,
                 std::uint64_t s);

  /// Counter a single-copy pull from `owner` belongs to, honoring any
  /// fault-driven mechanism degradation (XPMEM→CMA→CICO).
  obs::Counter pull_counter(const RankState& rs, int owner) const noexcept;

  // --- broadcast machinery (shared by bcast and the allreduce fan-out) -----
  /// Non-root side: pulls `bytes` from the member-level leader into the
  /// rank's destination, republishing to led groups chunk by chunk.
  void pull_bcast(mach::Ctx& ctx, const CommView& view, void* user_buf,
                  std::size_t bytes, bool cico, std::uint64_t s);

  /// Large-message bcast among top-level group members (DESIGN.md § Large-
  /// message paths): the payload is striped across the top group; each
  /// member pulls its own stripe from the root and republishes it, then
  /// assembles the others from their owners, relaying contiguous coverage
  /// to its led groups through the ordinary announce counters. Only ranks
  /// whose outermost membership is the top group call this; every other
  /// rank runs the unchanged pull path.
  void bcast_striped(mach::Ctx& ctx, const CommView& view, void* buf,
                     std::size_t bytes, int root, std::uint64_t s);

  // --- allreduce machinery --------------------------------------------------
  struct ReducePlan;
  /// Advances this rank's leader duties (completion scans of led groups) far
  /// enough that its subtree partial covers [0, target_bytes).
  void pump_own(mach::Ctx& ctx, const CommView& view, ReducePlan& plan,
                std::size_t target_bytes);
  /// Shared implementation of allreduce (deliver_all) and reduce.
  void reduce_impl(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                   std::size_t count, mach::DType dtype, mach::ROp op,
                   int root, bool deliver_all);

  /// Large-message allreduce (DESIGN.md § Large-message paths): nested
  /// reduce-scatter along the hierarchy (every rank ends up owning a fully
  /// reduced shard) followed by the mirrored allgather, synchronized
  /// through the per-rank cumulative `prog` flags of the shard plane.
  void allreduce_rs_ag(mach::Ctx& ctx, const CommView& view, const void* sbuf,
                       void* rbuf, std::size_t count, mach::DType dtype,
                       mach::ROp op, bool in_place, std::uint64_t s);

  mach::Machine* machine_;
  coll::Tuning tuning_;
  std::string name_;
  CommTree tree_;
  obs::HistSet* hist_ = nullptr;  ///< see hist_sink()
  std::unique_ptr<fault::Injector> fault_;
  std::uint64_t shm_retries_ = 0;  ///< CICO pool allocation retries at setup
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::vector<mach::Buffer> cico_bufs_;
  std::vector<CicoSeg> cico_;
};

}  // namespace xhc::core
