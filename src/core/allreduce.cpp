// XHC MPI_Allreduce (paper §IV-B): hierarchical reduce to an internal root,
// overlapped (per chunk) with a broadcast of the result.
//
// Every member publishes its contribution buffer; non-leader members take on
// chunk ranges and reduce all peers' data into the leader's result buffer,
// bumping their reduce_done counter. Leaders scan completion in chunk order
// and republish availability one level up through their reduce_ready slot;
// when a chunk reaches the top it is immediately broadcast down the same
// hierarchy via the pull machinery shared with MPI_Bcast.
#include <algorithm>

#include "core/shard_schedule.h"
#include "core/xhc_component.h"
#include "util/check.h"

namespace xhc::core {

namespace {

/// Number of members that actually reduce, honoring the per-member minimum
/// workload (paper §IV-B step 2a: with little data only one member reduces).
std::size_t active_reducers(std::size_t bytes, std::size_t n_nonleader,
                            std::size_t min_bytes) {
  if (n_nonleader == 0) return 0;
  if (min_bytes == 0) return n_nonleader;
  const std::size_t by_min = (bytes + min_bytes - 1) / min_bytes;
  return std::clamp<std::size_t>(by_min, 1, n_nonleader);
}

/// Chunk size aligned down to the element size (at least one element).
std::size_t aligned_chunk(std::size_t chunk, std::size_t elem) {
  if (chunk < elem) return elem;
  return chunk - chunk % elem;
}

}  // namespace

struct XhcComponent::ReducePlan {
  std::size_t bytes = 0;
  std::size_t elem = 0;
  mach::DType dtype{};
  mach::ROp op{};
  bool cico = false;
  std::uint64_t s = 0;
  const std::byte* contrib0 = nullptr;
  std::byte* result = nullptr;
  std::vector<std::size_t> scanned;
};

void XhcComponent::pump_own(mach::Ctx& ctx, const CommView& view,
                            ReducePlan& plan, std::size_t target_bytes) {
  const int r = ctx.rank();
  RankState& rs = state(r);
  const auto& ms = view.memberships(r);
  const std::size_t target = std::min(target_bytes, plan.bytes);

  for (std::size_t i = 0; i < ms.size(); ++i) {
    const CommView::Membership& m = ms[i];
    if (!m.is_leader) break;
    std::size_t& pos = plan.scanned[i];
    if (pos >= target) continue;

    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    const GroupShape& shape = tree_.shape(m.ctl_id);
    const std::uint64_t base =
        rs.reduce_base[static_cast<std::size_t>(m.ctl_id)];
    const std::size_t chunk =
        aligned_chunk(tuning_.chunk_for_level(m.level), plan.elem);

    std::vector<int> reducers;
    reducers.reserve(m.members.size());
    for (const int j : m.members) {
      if (j != r) reducers.push_back(j);
    }
    const std::size_t n_red = active_reducers(
        plan.bytes, reducers.size(), tuning_.min_reduce_bytes);

    while (pos < target) {
      const std::size_t lo = pos;
      const std::size_t hi = std::min(plan.bytes, lo + chunk);
      const std::size_t ci = lo / chunk;
      if (reducers.empty()) {
        // Singleton group: the group partial is the leader's own
        // contribution. At the leaf that means materializing it.
        if (m.level == 0) {
          ctx.copy(plan.result + lo, plan.contrib0 + lo, hi - lo);
        }
      } else {
        const int red = reducers[ci % n_red];
        WaitObs obs(*this, ctx, "reduce_done", m.level, red);
        ctx.flag_wait_ge(*ctl.reduce_done[shape.slot_of(red)], base + hi);
      }
      pos = hi;

      if (i + 1 < ms.size()) {
        // Republish the subtree partial one level up (§IV-B step 2b).
        const CommView::Membership& pm = ms[i + 1];
        GroupCtl& pctl = tree_.ctl(pm.ctl_id);
        ctx.flag_store(
            *pctl.reduce_ready[pm.my_slot],
            rs.reduce_base[static_cast<std::size_t>(pm.ctl_id)] + pos);
      } else {
        // Internal root: the chunk is globally reduced — trigger the
        // broadcast at every level the root leads (§IV-B step 3).
        for (const auto& m2 : ms) {
          announce_publish(
              ctx, m2,
              rs.bcast_base[static_cast<std::size_t>(m2.ctl_id)] + pos);
        }
      }
    }
  }
}

void XhcComponent::allreduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                             std::size_t count, mach::DType dtype,
                             mach::ROp op) {
  // The internal root is rank 0 and everyone receives the result.
  reduce_impl(ctx, sbuf, rbuf, count, dtype, op, /*root=*/0,
              /*deliver_all=*/true);
}

void XhcComponent::reduce(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                          std::size_t count, mach::DType dtype, mach::ROp op,
                          int root) {
  XHC_REQUIRE(root >= 0 && root < ctx.size(), "bad root ", root);
  reduce_impl(ctx, sbuf, rbuf, count, dtype, op, root,
              /*deliver_all=*/false);
}

void XhcComponent::reduce_impl(mach::Ctx& ctx, const void* sbuf, void* rbuf,
                               std::size_t count, mach::DType dtype,
                               mach::ROp op, int root, bool deliver_all) {
  const std::size_t elem = mach::dtype_size(dtype);
  const std::size_t bytes = count * elem;
  if (count == 0) return;
  const bool in_place = (sbuf == rbuf || sbuf == nullptr);
  if (ctx.size() == 1) {
    if (!in_place) ctx.copy(rbuf, sbuf, bytes);
    return;
  }
  if (in_place) sbuf = rbuf;

  XHC_TRACE(trace_sink(), ctx, "collective",
            deliver_all ? "xhc.allreduce" : "xhc.reduce", bytes);
  HistTimer op_t(hist_sink(), ctx, obs::HistKind::kOp);
  maybe_stall(ctx, -1);  // operation-entry straggler opportunity (any level)
  const int r = ctx.rank();
  RankState& rs = state(r);
  const std::uint64_t s = ++rs.op_seq;
  const CommView& view = tree_.view(root);
  const bool cico = bytes <= tuning_.cico_threshold;
  const auto& ms = view.memberships(r);
  const CicoSeg& my_seg = cico_[static_cast<std::size_t>(r)];

  // Size-class dispatch (DESIGN.md § Large-message paths): payloads strictly
  // above the threshold take the bandwidth path. The decision depends only
  // on state every rank shares (size, tuning, topology), so all ranks agree.
  if (deliver_all && !cico && tuning_.rs_ag_threshold > 0 &&
      bytes > tuning_.rs_ag_threshold && tree_.shard_plan().uniform()) {
    allreduce_rs_ag(ctx, view, sbuf, rbuf, count, dtype, op, in_place, s);
    for (auto& b : rs.bcast_base) b += bytes;
    for (auto& b : rs.reduce_base) b += bytes;
    rs.shard_base +=
        2 * static_cast<std::uint64_t>(tree_.shard_plan().n_stages()) * bytes;
    return;
  }

  ReducePlan plan;
  plan.bytes = bytes;
  plan.elem = elem;
  plan.dtype = dtype;
  plan.op = op;
  plan.cico = cico;
  plan.s = s;
  plan.scanned.assign(ms.size(), 0);
  if (cico) {
    // Copy-in (paper §IV-C): stage the contribution in the CICO segment.
    XHC_TRACE(trace_sink(), ctx, "copy", "allreduce.cico_copy_in", bytes);
    ctx.copy(my_seg.contrib, sbuf, bytes);
    book(ctx, obs::Counter::kCicoBytes, bytes);
    plan.contrib0 = my_seg.contrib;
    plan.result = my_seg.result;
  } else {
    plan.contrib0 = static_cast<const std::byte*>(sbuf);
    plan.result = static_cast<std::byte*>(rbuf);
    rs.endpoint->expose(ctx, sbuf, bytes);
    rs.endpoint->expose(ctx, rbuf, bytes);
  }

  // Step 1 (preparation): publish addresses and leaf availability.
  for (const auto& m : ms) {
    GroupCtl& ctl = tree_.ctl(m.ctl_id);
    ctl.minfo[m.my_slot]->contrib =
        (m.level == 0) ? static_cast<const void*>(plan.contrib0)
                       : static_cast<const void*>(plan.result);
    ctx.flag_store(*ctl.member_seq[m.my_slot], s);
    if (m.level == 0) {
      ctx.flag_store(
          *ctl.reduce_ready[m.my_slot],
          rs.reduce_base[static_cast<std::size_t>(m.ctl_id)] + bytes);
    }
    if (m.is_leader) {
      ctl.info[m.my_slot]->buf = plan.result;
      ctx.flag_store(*ctl.seq[m.my_slot], s);
    }
  }

  const CommView::Membership& top = ms.back();
  if (top.is_leader) {
    // Internal root: drive the completion scans; announce is published from
    // inside pump_own as chunks reach the top.
    pump_own(ctx, view, plan, bytes);
    for (const auto& m : ms) {
      wait_acks(ctx, m, s);
    }
    if (cico) {
      XHC_TRACE(trace_sink(), ctx, "copy", "allreduce.cico_copy_out", bytes);
      ctx.copy(rbuf, my_seg.result, bytes);
    }
  } else {
    // Step 2a (intra-group reduction) at this rank's member level,
    // interleaved with its leader duties below.
    GroupCtl& ctl = tree_.ctl(top.ctl_id);
    const GroupShape& shape = tree_.shape(top.ctl_id);
    const std::uint64_t base =
        rs.reduce_base[static_cast<std::size_t>(top.ctl_id)];
    std::vector<int> reducers;
    for (const int j : top.members) {
      if (j != top.leader) reducers.push_back(j);
    }
    const std::size_t n_red = active_reducers(
        bytes, reducers.size(), tuning_.min_reduce_bytes);
    std::size_t my_idx = reducers.size();
    for (std::size_t i = 0; i < reducers.size(); ++i) {
      if (reducers[i] == r) my_idx = i;
    }
    XHC_CHECK(my_idx < reducers.size(), "rank missing from reducer list");
    const bool active = my_idx < n_red;

    // Leader's result buffer (destination of the group partial).
    {
      WaitObs obs(*this, ctx, "seq_wait", top.level, top.leader);
      ctx.flag_wait_ge(*ctl.seq[top.leader_slot], s);
    }
    std::byte* dst;
    const std::byte* leader_contrib = nullptr;
    if (cico) {
      dst = cico_[static_cast<std::size_t>(top.leader)].result;
    } else {
      dst = static_cast<std::byte*>(rs.endpoint->attach_mut(
          ctx, top.leader, const_cast<void*>(ctl.info[top.leader_slot]->buf),
          bytes));
    }
    // Source operands: every non-leader member's contribution (including
    // this rank's own), plus — at the leaf — the leader's contribution used
    // to initialize the destination.
    std::vector<const std::byte*> src(reducers.size(), nullptr);
    if (active) {
      for (std::size_t i = 0; i < reducers.size(); ++i) {
        const int j = reducers[i];
        const int slot = shape.slot_of(j);
        {
          WaitObs obs(*this, ctx, "member_seq_wait", top.level, j);
          ctx.flag_wait_ge(*ctl.member_seq[slot], s);
        }
        src[i] = static_cast<const std::byte*>(rs.endpoint->attach(
            ctx, j, ctl.minfo[slot]->contrib, bytes));
      }
      if (top.level == 0) {
        {
          WaitObs obs(*this, ctx, "member_seq_wait", top.level, top.leader);
          ctx.flag_wait_ge(*ctl.member_seq[top.leader_slot], s);
        }
        leader_contrib = static_cast<const std::byte*>(rs.endpoint->attach(
            ctx, top.leader, ctl.minfo[top.leader_slot]->contrib, bytes));
      }
    }

    const std::size_t chunk =
        aligned_chunk(tuning_.chunk_for_level(top.level), elem);
    for (std::size_t lo = 0; lo < bytes;) {
      const std::size_t hi = std::min(bytes, lo + chunk);
      const std::size_t ci = lo / chunk;
      maybe_stall(ctx, top.level);
      // Keep this rank's own subtree partial flowing for the whole range —
      // peers reducing other chunks depend on it.
      pump_own(ctx, view, plan, hi);
      if (active && ci % n_red == my_idx) {
        XHC_TRACE(trace_sink(), ctx, "reduce", "allreduce.reduce_chunk",
                  hi - lo);
        HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
        count_chunk(ctx, top.level);
        if (top.level == 0) {
          // In-place at the internal root: dst may alias the leader's own
          // contribution, which is then already in place.
          if (dst != leader_contrib) {
            ctx.copy(dst + lo, leader_contrib + lo, hi - lo);
          }
        } else {
          // The destination must already hold the leader's subtree partial.
          WaitObs obs(*this, ctx, "reduce_ready_wait", top.level, top.leader);
          ctx.flag_wait_ge(*ctl.reduce_ready[top.leader_slot], base + hi);
        }
        const std::size_t n_elems = (hi - lo) / elem;
        for (std::size_t i = 0; i < reducers.size(); ++i) {
          if (top.level > 0 && reducers[i] != r) {
            WaitObs obs(*this, ctx, "reduce_ready_wait", top.level,
                        reducers[i]);
            ctx.flag_wait_ge(*ctl.reduce_ready[shape.slot_of(reducers[i])],
                             base + hi);
          }
          rs.endpoint->charge_op(ctx, hi - lo, ctx.size(),
                                 cico ? -1 : reducers[i]);
          ctx.reduce(dst + lo, src[i] + lo, n_elems, dtype, op);
          book(ctx, obs::Counter::kReduceBytes, hi - lo);
        }
        ctx.flag_store(*ctl.reduce_done[top.my_slot], base + hi);
        record_traffic(r, top.leader);
      }
      lo = hi;
    }

    if (deliver_all) {
      // Step 3 (broadcast of the result), shared with MPI_Bcast.
      pull_bcast(ctx, view, rbuf, bytes, cico, s);
    } else {
      // Reduce: only a completion release flows down — wait for the root's
      // announce, republish to led groups, then acknowledge upward.
      announce_wait(
          ctx, top,
          rs.bcast_base[static_cast<std::size_t>(top.ctl_id)] + bytes);
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        announce_publish(
            ctx, ms[i],
            rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)] + bytes);
      }
      for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
        wait_acks(ctx, ms[i], s);
      }
      ack_publish(ctx, top, s);
    }
  }

  for (auto& b : rs.bcast_base) b += bytes;
  for (auto& b : rs.reduce_base) b += bytes;
}

void XhcComponent::allreduce_rs_ag(mach::Ctx& ctx, const CommView& view,
                                   const void* sbuf, void* rbuf,
                                   std::size_t count, mach::DType dtype,
                                   mach::ROp op, bool in_place,
                                   std::uint64_t s) {
  const std::size_t elem = mach::dtype_size(dtype);
  const std::size_t bytes = count * elem;
  const int r = ctx.rank();
  RankState& rs = state(r);
  ShardCtl& sc = tree_.shard_ctl();
  const ShardSchedule sched = tree_.shard_plan().schedule(r, count, elem);
  const int n_stages = sched.n_stages();
  const std::uint64_t base = rs.shard_base;
  std::byte* dst = static_cast<std::byte*>(rbuf);
  const std::byte* own_contrib = static_cast<const std::byte*>(sbuf);

  // Peers read sbuf at stage 0 and rbuf everywhere after; publish both.
  rs.endpoint->expose(ctx, sbuf, bytes);
  rs.endpoint->expose(ctx, rbuf, bytes);
  sc.sinfo[r]->contrib = sbuf;
  sc.sinfo[r]->result = rbuf;
  ctx.flag_store(*sc.shard_seq[r], s);

  // --- reduce-scatter: stage k reduces this rank's shard of the shared
  // parent range, reading one peer per sibling child domain. Stage 0 reads
  // the peers' contribution buffers (fully available once published, no
  // progress wait); deeper stages read the peers' receive buffers, gated
  // chunk by chunk on the peers' stage-(k-1) progress.
  for (int k = 0; k < n_stages; ++k) {
    const ShardStage& st = sched.stages[k];
    std::vector<const std::byte*> src(st.peers.size(), nullptr);
    for (std::size_t i = 0; i < st.peers.size(); ++i) {
      const int j = st.peers[i];
      if (j == r) continue;
      {
        WaitObs obs(*this, ctx, "shard_seq_wait", k, j);
        ctx.flag_wait_ge(*sc.shard_seq[j], s);
      }
      src[i] = static_cast<const std::byte*>(rs.endpoint->attach(
          ctx, j, k == 0 ? sc.sinfo[j]->contrib : sc.sinfo[j]->result,
          bytes));
    }
    const std::size_t chunk_elems = std::max<std::size_t>(
        tuning_.large_chunk_for_level(k) / elem, 1);
    for (std::size_t lo = st.range.lo; lo < st.range.hi;) {
      const std::size_t hi = std::min(st.range.hi, lo + chunk_elems);
      maybe_stall(ctx, k);
      if (k > 0) {
        // The threshold is exact: every stage-k peer shares `parent`, and a
        // peer's prog advances relative to parent.lo during its stage k-1.
        for (std::size_t i = 0; i < st.peers.size(); ++i) {
          const int j = st.peers[i];
          if (j == r) continue;
          WaitObs obs(*this, ctx, "rs_src_wait", k, j);
          ctx.flag_wait_ge(*sc.prog[j], base + sched.rs_slot(k - 1) +
                                            (hi - st.parent.lo) * elem);
        }
      }
      {
        XHC_TRACE(trace_sink(), ctx, "reduce", "allreduce.rs_chunk",
                  (hi - lo) * elem);
        HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
        count_chunk(ctx, k);
        if (k == 0 && !in_place) {
          // Seed the shard with this rank's own contribution. In place the
          // bytes are already there, and stage-0 peers read disjoint ranges
          // of this buffer, so the in-place reduce below is race-free.
          ctx.copy(dst + lo * elem, own_contrib + lo * elem,
                   (hi - lo) * elem);
        }
        const std::size_t n_elems = hi - lo;
        for (std::size_t i = 0; i < st.peers.size(); ++i) {
          const int j = st.peers[i];
          if (j == r) continue;
          rs.endpoint->charge_op(ctx, n_elems * elem, ctx.size(), j);
          ctx.reduce(dst + lo * elem, src[i] + lo * elem, n_elems, dtype,
                     op);
          book(ctx, obs::Counter::kReduceBytes, n_elems * elem);
        }
      }
      ctx.flag_store(*sc.prog[r],
                     base + sched.rs_slot(k) + (hi - st.range.lo) * elem);
      lo = hi;
    }
    // Slot-boundary snap: deeper partitions differ by remainders across
    // ranks, so peers wait on slot multiples, not on exact shard sizes.
    ctx.flag_store(*sc.prog[r], base + sched.rs_slot(k + 1));
    for (const int j : st.peers) {
      if (j != r) record_traffic(j, r);
    }
  }

  // --- allgather: stage u rebuilds the stage-u parent range by pulling
  // every sibling's shard from its owner; outermost stage first, so each
  // pulled byte is already fully reduced. The outermost stage pipelines
  // into the peers' final reduce-scatter stage chunk by chunk; inner
  // stages wait for the peer's previous allgather slot to complete.
  for (int u = n_stages - 1; u >= 0; --u) {
    const ShardStage& st = sched.stages[u];
    for (std::size_t i = 0; i < st.peers.size(); ++i) {
      const int j = st.peers[i];
      if (j == r) continue;
      const ElemRange pr = partition(st.parent, st.peers.size(), i);
      if (pr.size() == 0) continue;
      // shard_seq[j] was already acquired during reduce-scatter stage u
      // (same peer set), so the sinfo read needs no further wait.
      const std::byte* srcp = static_cast<const std::byte*>(
          rs.endpoint->attach(ctx, j, sc.sinfo[j]->result, bytes));
      const obs::Counter ctr = pull_counter(rs, j);
      const std::size_t chunk_elems = std::max<std::size_t>(
          tuning_.large_chunk_for_level(u) / elem, 1);
      if (u < n_stages - 1) {
        WaitObs obs(*this, ctx, "ag_piece_wait", u, j);
        ctx.flag_wait_ge(*sc.prog[j], base + sched.ag_slot(u));
      }
      for (std::size_t lo = pr.lo; lo < pr.hi;) {
        const std::size_t hi = std::min(pr.hi, lo + chunk_elems);
        maybe_stall(ctx, u);
        if (u == n_stages - 1) {
          WaitObs obs(*this, ctx, "ag_piece_wait", u, j);
          ctx.flag_wait_ge(*sc.prog[j],
                           base + sched.rs_slot(u) + (hi - pr.lo) * elem);
        }
        XHC_TRACE(trace_sink(), ctx, "copy", "allreduce.ag_pull",
                  (hi - lo) * elem);
        HistTimer chunk_t(hist_sink(), ctx, obs::HistKind::kChunk);
        count_chunk(ctx, u);
        rs.endpoint->charge_op(ctx, (hi - lo) * elem, ctx.size(), j);
        ctx.copy(dst + lo * elem, srcp + lo * elem, (hi - lo) * elem);
        book(ctx, ctr, (hi - lo) * elem);
        lo = hi;
      }
      record_traffic(j, r);
    }
    ctx.flag_store(*sc.prog[r], base + sched.ag_slot(u) + bytes);
  }

  // --- completion fence: this rank's rbuf stays readable by peers until
  // their own allgather finishes, so nobody may return (and hand rbuf back
  // to the user) before everyone is done. Reuses the hierarchical ack
  // gather + announce release, one ack per member per op, so both sync
  // methods stay correct.
  const auto& ms = view.memberships(r);
  const CommView::Membership& top = ms.back();
  if (top.is_leader) {
    for (const auto& m : ms) {
      wait_acks(ctx, m, s);
    }
    for (const auto& m : ms) {
      announce_publish(
          ctx, m, rs.bcast_base[static_cast<std::size_t>(m.ctl_id)] + bytes);
    }
  } else {
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      wait_acks(ctx, ms[i], s);
    }
    ack_publish(ctx, top, s);
    announce_wait(ctx, top,
                  rs.bcast_base[static_cast<std::size_t>(top.ctl_id)] + bytes);
    for (std::size_t i = 0; i + 1 < ms.size(); ++i) {
      announce_publish(
          ctx, ms[i],
          rs.bcast_base[static_cast<std::size_t>(ms[i].ctl_id)] + bytes);
    }
  }
}

}  // namespace xhc::core
