#include "core/shard_schedule.h"

#include <algorithm>

#include "util/check.h"

namespace xhc::core {

ElemRange partition(ElemRange parent, std::size_t n, std::size_t i) {
  const std::size_t len = parent.size();
  const std::size_t q = len / n;
  const std::size_t rem = len % n;
  ElemRange r;
  r.lo = parent.lo + q * i + std::min(i, rem);
  r.hi = r.lo + q + (i < rem ? 1 : 0);
  return r;
}

ShardPlan::ShardPlan(const CommTree& tree) {
  const int n_ranks = tree.n_ranks();
  const int n_levels = tree.n_levels();

  // Group the shapes by level, in ctl-id order (level-major build order, so
  // within a level they are ascending by first domain rank).
  std::vector<std::vector<int>> level_shapes(
      static_cast<std::size_t>(n_levels));
  for (int id = 0; id < tree.n_groups(); ++id) {
    level_shapes[static_cast<std::size_t>(tree.shape(id).level)].push_back(id);
  }

  children_.resize(static_cast<std::size_t>(n_levels));
  group_of_.assign(static_cast<std::size_t>(n_levels),
                   std::vector<int>(static_cast<std::size_t>(n_ranks), -1));
  child_pos_.assign(static_cast<std::size_t>(n_levels),
                    std::vector<int>(static_cast<std::size_t>(n_ranks), -1));

  for (int l = 0; l < n_levels; ++l) {
    const auto& ids = level_shapes[static_cast<std::size_t>(l)];
    children_[static_cast<std::size_t>(l)].resize(ids.size());
    for (std::size_t gi = 0; gi < ids.size(); ++gi) {
      const GroupShape& shape = tree.shape(ids[gi]);
      for (const int r : shape.domain_ranks) {
        group_of_[static_cast<std::size_t>(l)][static_cast<std::size_t>(r)] =
            static_cast<int>(gi);
      }
      if (l == 0) {
        children_[0][gi] = shape.domain_ranks;
        for (std::size_t j = 0; j < shape.domain_ranks.size(); ++j) {
          child_pos_[0][static_cast<std::size_t>(shape.domain_ranks[j])] =
              static_cast<int>(j);
        }
      }
    }
    if (l > 0) {
      // A level-(l-1) group is a child of the level-l group whose domain
      // contains it; domains at one level partition the ranks, so the first
      // domain rank identifies the parent.
      const auto& lower = level_shapes[static_cast<std::size_t>(l - 1)];
      for (std::size_t ci = 0; ci < lower.size(); ++ci) {
        const int r0 = tree.shape(lower[ci]).domain_ranks.front();
        const int gi =
            group_of_[static_cast<std::size_t>(l)][static_cast<std::size_t>(
                r0)];
        if (gi < 0) continue;
        children_[static_cast<std::size_t>(l)][static_cast<std::size_t>(gi)]
            .push_back(static_cast<int>(ci));
      }
      for (std::size_t gi = 0; gi < ids.size(); ++gi) {
        for (std::size_t j = 0;
             j < children_[static_cast<std::size_t>(l)][gi].size(); ++j) {
          const int ci = children_[static_cast<std::size_t>(l)][gi][j];
          for (const int r :
               tree.shape(lower[static_cast<std::size_t>(ci)]).domain_ranks) {
            child_pos_[static_cast<std::size_t>(l)]
                      [static_cast<std::size_t>(r)] = static_cast<int>(j);
          }
        }
      }
    }
  }

  // Uniformity: equal child counts within each level, and every rank mapped
  // at every level. Remainder-uneven partitions are fine; unequal *widths*
  // would misalign peer shards.
  uniform_ = true;
  for (int l = 0; l < n_levels && uniform_; ++l) {
    const auto& groups = children_[static_cast<std::size_t>(l)];
    for (std::size_t gi = 0; gi + 1 < groups.size(); ++gi) {
      if (groups[gi].size() != groups[gi + 1].size()) uniform_ = false;
    }
    for (int r = 0; r < n_ranks; ++r) {
      if (group_of_[static_cast<std::size_t>(l)][static_cast<std::size_t>(
              r)] < 0 ||
          child_pos_[static_cast<std::size_t>(l)][static_cast<std::size_t>(
              r)] < 0) {
        uniform_ = false;
      }
    }
  }
}

int ShardPlan::resolve(int l, int g, const std::vector<int>& digits) const {
  int cur = g;
  for (int t = l; t >= 0; --t) {
    cur = children_[static_cast<std::size_t>(t)][static_cast<std::size_t>(
        cur)][static_cast<std::size_t>(digits[static_cast<std::size_t>(t)])];
  }
  return cur;
}

ShardSchedule ShardPlan::schedule(int rank, std::size_t count,
                                  std::size_t elem) const {
  XHC_REQUIRE(uniform_, "shard schedule on a non-uniform hierarchy");
  const int n_levels = n_stages();

  std::vector<int> digits(static_cast<std::size_t>(n_levels));
  for (int l = 0; l < n_levels; ++l) {
    digits[static_cast<std::size_t>(l)] =
        child_pos_[static_cast<std::size_t>(l)][static_cast<std::size_t>(
            rank)];
  }

  ShardSchedule s;
  s.bytes = count * elem;
  s.stages.reserve(static_cast<std::size_t>(n_levels));
  ElemRange cur{0, count};
  for (int k = 0; k < n_levels; ++k) {
    const int g =
        group_of_[static_cast<std::size_t>(k)][static_cast<std::size_t>(rank)];
    const auto& kids =
        children_[static_cast<std::size_t>(k)][static_cast<std::size_t>(g)];
    ShardStage st;
    st.parent = cur;
    st.my_idx = digits[static_cast<std::size_t>(k)];
    st.peers.reserve(kids.size());
    for (const int kid : kids) {
      st.peers.push_back(k == 0 ? kid : resolve(k - 1, kid, digits));
    }
    XHC_CHECK(st.peers[static_cast<std::size_t>(st.my_idx)] == rank,
              "shard schedule self-resolution mismatch for rank ", rank);
    st.range = partition(cur, kids.size(), static_cast<std::size_t>(st.my_idx));
    cur = st.range;
    s.stages.push_back(std::move(st));
  }
  return s;
}

}  // namespace xhc::core
