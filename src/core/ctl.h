// Shared control blocks of the XHC framework (paper §III-E, §IV).
//
// One GroupCtl exists per hierarchy group. All synchronization state follows
// the single-writer / multiple-readers paradigm: every flag has exactly one
// writer (the group leader, or one specific member), and flags with distinct
// writers live on distinct cache lines to avoid false sharing. The only
// exceptions are the deliberately mis-laid-out variants used by the paper's
// experiments: the packed `announce_shared` array (Fig. 10, "shared") and
// the `atomic_ctr` counter (Fig. 4, atomics-based sync).
//
// All counters are monotone across operations (cumulative bytes / operation
// sequence numbers), so flags never need to be reset — reuse is governed by
// the hierarchical acknowledgement step alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mach/flag.h"
#include "mach/machine.h"
#include "util/cacheline.h"

namespace xhc::core {

/// Leader-published per-operation metadata; guarded by `seq` (release on
/// store, acquire on wait).
struct LeaderInfo {
  const void* buf = nullptr;  ///< leader's exposed buffer for this op
};

/// Member-published per-operation metadata; guarded by `member_seq`.
struct MemberInfo {
  const void* contrib = nullptr;  ///< member's contribution buffer
  const void* result = nullptr;   ///< member's result buffer (XBRC allgather)
};

/// Typed view over one group's shared control block. The pointers target a
/// single machine allocation owned by the group's home rank; constructed by
/// CtlArena.
///
/// Leadership is root-dependent (the root leads every group it belongs to,
/// paper §IV), so the leader-published plane is indexed by the *leader's*
/// member slot rather than being a single rotating mailbox. With a single
/// mailbox, op N's leader can overwrite the buffer pointer while a straggler
/// member of op N-1 — whose own leader is still collecting acks — has not
/// read it yet: the straggler's `seq >= s` wait passes on the newer value and
/// it pulls from the wrong (possibly unwritten) buffer. Per-slot mailboxes
/// close that window without extra synchronization: a rank reuses its own
/// slot only after collecting its previous op's acks, and a stale slot value
/// is always below the waiter's threshold (bases are cumulative), so waits
/// are exact.
struct GroupCtl {
  // --- leader-written, indexed by the leader's slot ------------------------
  util::CachePadded<mach::Flag>* seq = nullptr;       ///< [slots] op sequence
  util::CachePadded<mach::Flag>* announce = nullptr;  ///< [slots] cumulative
                                                      ///< bytes published
                                                      ///< (single-flag layout)
  util::CachePadded<LeaderInfo>* info = nullptr;      ///< [slots]

  // --- per-member slots (each member writes only its own slot) -------------
  util::CachePadded<mach::Flag>* ack = nullptr;          ///< [slots]
  util::CachePadded<mach::Flag>* member_seq = nullptr;   ///< [slots]
  util::CachePadded<MemberInfo>* minfo = nullptr;        ///< [slots]
  util::CachePadded<mach::Flag>* reduce_ready = nullptr; ///< [slots]
  util::CachePadded<mach::Flag>* reduce_done = nullptr;  ///< [slots]

  // --- experiment variants --------------------------------------------------
  /// Per-member announce flags, deliberately packed so neighbours share
  /// cache lines (Fig. 10 "shared"). Leader-written.
  mach::Flag* announce_shared = nullptr;  ///< [slots]
  /// Per-member announce flags, one line each (Fig. 10 "separated").
  util::CachePadded<mach::Flag>* announce_sep = nullptr;  ///< [slots]
  /// Shared atomic counter for the fetch-add sync variant (Fig. 4).
  util::CachePadded<mach::Flag>* atomic_ctr = nullptr;

  int slots = 0;
};

/// Per-communicator control plane of the large-message paths (DESIGN.md
/// § Large-message paths): one slot per *global rank*, so shard and stripe
/// owners can publish progress to any peer without a group indirection.
/// Every slot is written only by its own rank (WriterPolicy::kFixed):
///
///  - `shard_seq[r]`  — rank r has joined the op and published `sinfo[r]`
///                      (value: op sequence number, release/acquire guard).
///  - `prog[r]`       — cumulative bytes rank r has produced on the
///                      reduce-scatter + allgather timeline; stage
///                      boundaries snap to `base + stage_slot * bytes`, so
///                      peers compute exact chunk thresholds from the
///                      shared schedule alone.
///  - `stripe_ready[r]` — cumulative bytes of rank r's bcast stripe pulled
///                      from the root and republished.
struct ShardCtl {
  util::CachePadded<mach::Flag>* shard_seq = nullptr;     ///< [slots]
  util::CachePadded<MemberInfo>* sinfo = nullptr;         ///< [slots]
  util::CachePadded<mach::Flag>* prog = nullptr;          ///< [slots]
  util::CachePadded<mach::Flag>* stripe_ready = nullptr;  ///< [slots]
  int slots = 0;
};

/// Allocates and owns the control blocks for a set of groups.
class CtlArena {
 public:
  CtlArena() = default;
  ~CtlArena();
  CtlArena(const CtlArena&) = delete;
  CtlArena& operator=(const CtlArena&) = delete;

  /// Builds a control block for a group with `slots` member slots; the
  /// allocation is owned by `home_rank` (placed on its NUMA node). `scope`
  /// prefixes the ledger names of every flag in the block — empty (the
  /// default, single-communicator case) keeps the historical "ctlN/hM"
  /// names; multi-tenant service communicators pass "comm<id>'<name>'/" so
  /// watchdog and deadlock diagnostics name the owning communicator.
  GroupCtl add_group(mach::Machine& m, int home_rank, int slots,
                     const std::string& scope = {});

  /// Builds the per-communicator shard/stripe plane with one slot per rank
  /// (owned by rank 0's NUMA node; every slot is cache-line padded, so home
  /// placement only affects line-fetch distance, not sharing).
  ShardCtl add_shard_plane(mach::Machine& m, int slots,
                           const std::string& scope = {});

  /// Observability accessors (obs::Gauge::kCtlBytes / kCtlGroups).
  std::size_t total_bytes() const noexcept { return total_bytes_; }
  std::size_t n_groups() const noexcept { return allocations_.size(); }

 private:
  struct Allocation {
    mach::Machine* machine = nullptr;
    void* p = nullptr;
  };
  std::vector<Allocation> allocations_;
  std::size_t total_bytes_ = 0;
};

/// Per-rank copy-in-copy-out segment (paper §IV-C): the first half stages a
/// rank's outgoing contribution, the second half stages a leader's result.
struct CicoSeg {
  std::byte* contrib = nullptr;
  std::byte* result = nullptr;
  std::size_t half_bytes = 0;
};

}  // namespace xhc::core
