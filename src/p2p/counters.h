// Message-distance accounting (paper Table II).
//
// Counts logical messages by the topological distance between the ranks
// involved: inter-socket, inter-NUMA (same socket), intra-NUMA. Used by the
// pt2pt fabric (tuned) and by the direct components (XHC etc.), which record
// one entry per leader↔member data transfer.
#pragma once

#include <atomic>
#include <cstdint>

#include "topo/mapping.h"
#include "topo/topology.h"

namespace xhc::p2p {

class TrafficCounter {
 public:
  TrafficCounter(const topo::Topology* topo, const topo::RankMap* map)
      : topo_(topo), map_(map) {}

  void record(int src_rank, int dst_rank) {
    switch (map_->distance(*topo_, src_rank, dst_rank)) {
      case topo::Distance::kCrossSocket:
        inter_socket_.fetch_add(1, std::memory_order_relaxed);
        break;
      case topo::Distance::kCrossNuma:
        inter_numa_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        intra_numa_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  // The counters are independent statistics, not synchronization state:
  // record() already uses relaxed increments, so the readers and reset()
  // match it — sequentially consistent accesses here would only add fences
  // for an ordering nothing relies on.
  std::uint64_t inter_socket() const noexcept {
    return inter_socket_.load(std::memory_order_relaxed);
  }
  std::uint64_t inter_numa() const noexcept {
    return inter_numa_.load(std::memory_order_relaxed);
  }
  std::uint64_t intra_numa() const noexcept {
    return intra_numa_.load(std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    return inter_socket() + inter_numa() + intra_numa();
  }

  void reset() {
    inter_socket_.store(0, std::memory_order_relaxed);
    inter_numa_.store(0, std::memory_order_relaxed);
    intra_numa_.store(0, std::memory_order_relaxed);
  }

 private:
  const topo::Topology* topo_;
  const topo::RankMap* map_;
  std::atomic<std::uint64_t> inter_socket_{0};
  std::atomic<std::uint64_t> inter_numa_{0};
  std::atomic<std::uint64_t> intra_numa_{0};
};

}  // namespace xhc::p2p
