#include "p2p/fabric.h"

#include <algorithm>
#include <new>
#include <string>

#include "util/cacheline.h"
#include "util/check.h"
#include "verify/verify.h"

namespace xhc::p2p {

struct Fabric::Channel {
  static constexpr std::uint64_t kRing = 4;

  struct Desc {
    std::uint64_t tag = 0;
    std::uint64_t bytes = 0;
    const void* buf = nullptr;  ///< rendezvous source buffer
    bool eager = false;
  };

  /// Shared control block; receiver-owned memory (OpenMPI places the FIFO
  /// at the receiver).
  struct Ctl {
    util::CachePadded<mach::Flag> send_seq;  ///< sender-written
    util::CachePadded<mach::Flag> recv_seq;  ///< receiver-written
    util::CachePadded<Desc> descs[kRing];    ///< guarded by send_seq
  };

  Ctl* ctl = nullptr;
  std::byte* ring = nullptr;  ///< kRing * eager_slot payload bytes
  // Rank-local protocol counters (sender touches nsent, receiver nrecv).
  util::CachePadded<std::uint64_t> nsent;
  util::CachePadded<std::uint64_t> nrecv;

  mach::Machine* machine = nullptr;
  void* ctl_alloc = nullptr;
  void* ring_alloc = nullptr;

  ~Channel() {
    if (machine != nullptr) {
      if (ctl_alloc != nullptr) machine->free(ctl_alloc);
      if (ring_alloc != nullptr) machine->free(ring_alloc);
    }
  }
};

Fabric::Fabric(mach::Machine& machine, Config config)
    : machine_(&machine),
      config_(config),
      counters_(&machine.topology(), &machine.map()) {
  XHC_REQUIRE(config_.eager_slot >= config_.eager_threshold,
              "eager ring slot smaller than the eager threshold");
  endpoints_.reserve(static_cast<std::size_t>(machine.n_ranks()));
  for (int r = 0; r < machine.n_ranks(); ++r) {
    endpoints_.push_back(std::make_unique<smsc::Endpoint>(config_.mechanism,
                                                          config_.reg_cache));
  }
}

Fabric::~Fabric() = default;

bool Fabric::eager(std::size_t bytes) const noexcept {
  if (!smsc::costs_for(config_.mechanism).mapping &&
      config_.mechanism == smsc::Mechanism::kCico) {
    return true;  // no single-copy support: everything bounces via the ring
  }
  return bytes <= config_.eager_threshold;
}

Fabric::Channel& Fabric::channel(mach::Ctx& ctx, int src, int dst) {
  (void)ctx;
  std::lock_guard<std::mutex> lock(channels_mu_);
  auto it = channels_.find({src, dst});
  if (it != channels_.end()) return *it->second;

  auto ch = std::make_unique<Channel>();
  ch->machine = machine_;
  ch->ctl_alloc = machine_->alloc(dst, sizeof(Channel::Ctl));
  ch->ctl = new (ch->ctl_alloc) Channel::Ctl();
  // Protocol verifier: each sequence flag has exactly one writer — the
  // sender bumps send_seq, the receiver bumps recv_seq.
  const std::string prefix =
      "p2p.ch" + std::to_string(src) + ">" + std::to_string(dst);
  machine_->verify_ledger().register_flag(&*ch->ctl->send_seq,
                                          prefix + ".send_seq",
                                          verify::WriterPolicy::kFixed);
  machine_->verify_ledger().register_flag(&*ch->ctl->recv_seq,
                                          prefix + ".recv_seq",
                                          verify::WriterPolicy::kFixed);
  ch->ring_alloc =
      machine_->alloc(dst, Channel::kRing * config_.eager_slot);
  ch->ring = static_cast<std::byte*>(ch->ring_alloc);
  it = channels_.emplace(std::make_pair(src, dst), std::move(ch)).first;
  return *it->second;
}

Fabric::SendHandle Fabric::send_begin(mach::Ctx& ctx, int dst, int tag,
                                     const void* buf, std::size_t bytes) {
  XHC_REQUIRE(dst != ctx.rank(), "self-send is not supported");
  XHC_REQUIRE(!eager(bytes) || bytes <= config_.eager_slot,
              "fragmentation must happen above send_begin");
  Channel& ch = channel(ctx, ctx.rank(), dst);
  counters_.record(ctx.rank(), dst);

  const std::uint64_t seq = ++*ch.nsent;
  if (seq > Channel::kRing) {
    // Wait for a free ring slot / descriptor.
    ctx.flag_wait_ge(*ch.ctl->recv_seq, seq - Channel::kRing);
  }
  Channel::Desc& d = *ch.ctl->descs[(seq - 1) % Channel::kRing];
  d.tag = static_cast<std::uint64_t>(tag);
  d.bytes = bytes;
  ctx.charge(config_.match_overhead);

  SendHandle token;
  token.channel = &ch;
  token.seq = seq;
  if (eager(bytes)) {
    d.eager = true;
    d.buf = nullptr;
    ctx.copy(ch.ring + ((seq - 1) % Channel::kRing) * config_.eager_slot, buf,
             bytes);
    token.pending = false;
  } else {
    d.eager = false;
    d.buf = buf;
    endpoints_[static_cast<std::size_t>(ctx.rank())]->expose(ctx, buf, bytes);
    token.pending = true;
  }
  ctx.flag_store(*ch.ctl->send_seq, seq);
  return token;
}

void Fabric::send_end(mach::Ctx& ctx, SendHandle token) {
  if (!token.pending) return;
  // Rendezvous completes when the receiver has pulled the payload.
  ctx.flag_wait_ge(*token.channel->ctl->recv_seq, token.seq);
}

void Fabric::recv(mach::Ctx& ctx, int src, int tag, void* buf,
                  std::size_t bytes) {
  XHC_REQUIRE(src != ctx.rank(), "self-receive is not supported");
  if (eager(bytes) && bytes > config_.eager_slot) {
    // Mirror of the sender-side fragmentation.
    std::size_t off = 0;
    while (off < bytes) {
      const std::size_t n = std::min(config_.eager_slot, bytes - off);
      recv(ctx, src, tag, static_cast<std::byte*>(buf) + off, n);
      off += n;
    }
    return;
  }

  Channel& ch = channel(ctx, src, ctx.rank());
  const std::uint64_t seq = ++*ch.nrecv;
  ctx.flag_wait_ge(*ch.ctl->send_seq, seq);
  ctx.charge(config_.match_overhead);
  const Channel::Desc& d = *ch.ctl->descs[(seq - 1) % Channel::kRing];
  XHC_CHECK(d.tag == static_cast<std::uint64_t>(tag),
            "out-of-order tag: expected ", tag, " got ", d.tag, " (src=", src,
            " dst=", ctx.rank(), ")");
  XHC_CHECK(d.bytes == bytes, "message size mismatch: expected ", bytes,
            " got ", d.bytes);
  if (d.eager) {
    ctx.copy(buf, ch.ring + ((seq - 1) % Channel::kRing) * config_.eager_slot,
             bytes);
  } else {
    auto& ep = *endpoints_[static_cast<std::size_t>(ctx.rank())];
    const void* src_ptr = ep.attach(ctx, src, d.buf, bytes);
    ep.charge_op(ctx, bytes, machine_->n_ranks());
    ctx.copy(buf, src_ptr, bytes);
  }
  ctx.flag_store(*ch.ctl->recv_seq, seq);
}

Fabric::SendHandle Fabric::isend(mach::Ctx& ctx, int dst, int tag,
                                 const void* buf, std::size_t bytes) {
  if (eager(bytes) && bytes > config_.eager_slot) {
    // Fragmented eager streams need flow control; post them synchronously.
    send(ctx, dst, tag, buf, bytes);
    return SendHandle{};
  }
  return send_begin(ctx, dst, tag, buf, bytes);
}

void Fabric::wait_send(mach::Ctx& ctx, SendHandle& handle) {
  send_end(ctx, handle);
  handle.pending = false;
}

void Fabric::send(mach::Ctx& ctx, int dst, int tag, const void* buf,
                  std::size_t bytes) {
  if (eager(bytes) && bytes > config_.eager_slot) {
    std::size_t off = 0;
    while (off < bytes) {
      const std::size_t n = std::min(config_.eager_slot, bytes - off);
      send(ctx, dst, tag, static_cast<const std::byte*>(buf) + off, n);
      off += n;
    }
    return;
  }
  send_end(ctx, send_begin(ctx, dst, tag, buf, bytes));
}

void Fabric::sendrecv(mach::Ctx& ctx, int dst, const void* sbuf,
                      std::size_t sbytes, int src, void* rbuf,
                      std::size_t rbytes, int tag) {
  const bool frag_send = eager(sbytes) && sbytes > config_.eager_slot;
  const bool frag_recv = eager(rbytes) && rbytes > config_.eager_slot;
  if (!frag_send && !frag_recv) {
    SendHandle token = send_begin(ctx, dst, tag, sbuf, sbytes);
    recv(ctx, src, tag, rbuf, rbytes);
    send_end(ctx, token);
    return;
  }
  // Interleave fragments so bounded rings cannot deadlock when both sides
  // stream simultaneously.
  std::size_t soff = 0;
  std::size_t roff = 0;
  while (soff < sbytes || roff < rbytes) {
    if (soff < sbytes) {
      const std::size_t n = std::min(config_.eager_slot, sbytes - soff);
      SendHandle token = send_begin(
          ctx, dst, tag, static_cast<const std::byte*>(sbuf) + soff, n);
      soff += n;
      if (roff < rbytes) {
        const std::size_t m = std::min(config_.eager_slot, rbytes - roff);
        recv(ctx, src, tag, static_cast<std::byte*>(rbuf) + roff, m);
        roff += m;
      }
      send_end(ctx, token);
    } else {
      const std::size_t m = std::min(config_.eager_slot, rbytes - roff);
      recv(ctx, src, tag, static_cast<std::byte*>(rbuf) + roff, m);
      roff += m;
    }
  }
}

}  // namespace xhc::p2p
