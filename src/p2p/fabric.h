// Point-to-point messaging fabric — the pt2pt layer the OpenMPI `tuned`
// component builds collectives on (paper §II-A).
//
// Implements per-pair in-order channels with eager and rendezvous protocols:
//   * eager: payload is copied into a bounded ring at the receiver
//     (copy-in-copy-out), one extra copy per side plus matching overhead;
//   * rendezvous: the sender publishes its buffer, the receiver pulls it
//     with a single copy through the configured smsc mechanism (XPMEM with
//     registration caching by default; CMA/KNEM pay their per-op kernel
//     costs — the Fig. 3 experiment).
// Matching is in-order per (source, destination) with tag verification,
// which is exactly what the deterministic schedules of tree-based
// collectives require. Every message is recorded in a TrafficCounter
// (Table II).
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "mach/machine.h"
#include "p2p/counters.h"
#include "smsc/endpoint.h"

namespace xhc::p2p {

class Fabric {
 public:
  struct Config {
    std::size_t eager_threshold = 4096;  ///< <= this: eager protocol
    std::size_t eager_slot = 8192;       ///< ring slot payload capacity
    smsc::Mechanism mechanism = smsc::Mechanism::kXpmem;
    bool reg_cache = true;
    /// Per-message software overhead per side: descriptor handling, tag
    /// matching, queue maintenance (§I: "overheads of the point-to-point
    /// layer").
    double match_overhead = 400e-9;
  };

  Fabric(mach::Machine& machine, Config config);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  struct Channel;

  /// A posted-but-incomplete send (the isend/wait pair tree algorithms use
  /// to overlap transfers to several children).
  struct SendHandle {
    Channel* channel = nullptr;
    std::uint64_t seq = 0;
    bool pending = false;
  };

  /// Blocking send: returns when the payload is delivered (eager) or pulled
  /// by the receiver (rendezvous).
  void send(mach::Ctx& ctx, int dst, int tag, const void* buf,
            std::size_t bytes);

  /// Posts a send without waiting for rendezvous completion. Falls back to
  /// a blocking send when the payload needs eager fragmentation. Complete
  /// with wait_send.
  SendHandle isend(mach::Ctx& ctx, int dst, int tag, const void* buf,
                   std::size_t bytes);
  void wait_send(mach::Ctx& ctx, SendHandle& handle);

  /// Blocking in-order receive; tag and size must match the next message on
  /// the (src → this rank) channel.
  void recv(mach::Ctx& ctx, int src, int tag, void* buf, std::size_t bytes);

  /// Simultaneous exchange with (possibly different) peers — required by
  /// recursive doubling and ring schedules, where a plain blocking
  /// send+recv would deadlock.
  void sendrecv(mach::Ctx& ctx, int dst, const void* sbuf, std::size_t sbytes,
                int src, void* rbuf, std::size_t rbytes, int tag);

  TrafficCounter& counters() noexcept { return counters_; }

 private:
  Channel& channel(mach::Ctx& ctx, int src, int dst);
  SendHandle send_begin(mach::Ctx& ctx, int dst, int tag, const void* buf,
                        std::size_t bytes);
  void send_end(mach::Ctx& ctx, SendHandle token);
  /// True when (src,dst,bytes) would use the eager path.
  bool eager(std::size_t bytes) const noexcept;

  mach::Machine* machine_;
  Config config_;
  TrafficCounter counters_;
  std::vector<std::unique_ptr<smsc::Endpoint>> endpoints_;  // per rank

  std::mutex channels_mu_;
  std::map<std::pair<int, int>, std::unique_ptr<Channel>> channels_;
};

}  // namespace xhc::p2p
