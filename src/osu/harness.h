// OSU-style microbenchmark harness (paper §V-A).
//
// Mirrors the OSU suite's structure — warmup runs, timed iterations, mean
// latency — plus the authors' cache-defeating `_mb` variants that rewrite
// the payload before every call (Fig. 7): with `modify_buffer=false` the
// stock benchmark's buffer reuse lets the platform's caches hide the
// inter-domain traffic the collective actually generates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coll/component.h"
#include "mach/machine.h"
#include "p2p/fabric.h"

namespace xhc::osu {

struct Config {
  int warmup = 1;
  int iters = 2;
  bool modify_buffer = true;  ///< the `_mb` variant (default in §V)
  int root = 0;
  /// Payload verification after each size's sweep. Bcast compares the raw
  /// pattern bytes; allreduce additionally swaps the timed garbage operands
  /// for bounded deterministic floats (exact multiples of 1/256, so the
  /// double-precision reference sum bounds the rounding error tightly) and
  /// checks every rank's result element-wise. The operand swap is host-side
  /// and unmodeled, so virtual timings are identical with verify on or off.
  bool verify = true;
  /// When non-null, attached to the component before the sweep (the
  /// component's Tuning::trace must also be set for collection to engage).
  obs::Observer* observer = nullptr;
  /// When non-null, the collective sweeps append one merged histogram of
  /// per-iteration per-rank op latencies per message size (named with the
  /// size label). Ranks record into private rows inside the parallel region
  /// (single-writer, allocation-free) and the rows merge after the run —
  /// independent of `observer`, usable on either machine.
  std::vector<obs::NamedHist>* size_hists = nullptr;
};

struct SizeResult {
  std::size_t bytes = 0;
  double avg_us = 0.0;  ///< mean latency over ranks and iterations
  double min_us = 0.0;  ///< fastest rank
  double max_us = 0.0;  ///< slowest rank
};

/// Power-of-two sizes in [min_bytes, max_bytes].
std::vector<std::size_t> default_sizes(std::size_t min_bytes,
                                       std::size_t max_bytes);

/// Runs `body` (a benchmark's whole main) and converts any escaping
/// exception — verification mismatch, watchdog abort, bad flags — into an
/// error line on stderr and exit code 1, so shell pipelines and CI observe
/// failures instead of an unwound stack trace with an undefined status.
int guarded_main(const std::function<int()>& body) noexcept;

/// Executes fn(i) for every i in [0, n) over a pool of `jobs` host worker
/// threads (`jobs <= 1` runs inline on the caller, in index order;
/// `jobs == 0` means one per host core). Points must be independent — in
/// the bench binaries each one owns a private SimMachine, so the
/// simulations stay internally sequential and deterministic and a parallel
/// sweep produces byte-identical results to a sequential one; only the
/// dispatch order varies. If points throw, the lowest-index exception is
/// rethrown after the pool drains.
void run_points(std::size_t n, int jobs,
                const std::function<void(std::size_t)>& fn);

/// osu_bcast / osu_bcast_mb over one component.
std::vector<SizeResult> bcast_sweep(mach::Machine& machine,
                                    coll::Component& comp,
                                    const std::vector<std::size_t>& sizes,
                                    const Config& config);

/// osu_allreduce / osu_allreduce_mb (float sum).
std::vector<SizeResult> allreduce_sweep(mach::Machine& machine,
                                        coll::Component& comp,
                                        const std::vector<std::size_t>& sizes,
                                        const Config& config);

/// osu_reduce / osu_reduce_mb (float sum, root = Config::root).
std::vector<SizeResult> reduce_sweep(mach::Machine& machine,
                                     coll::Component& comp,
                                     const std::vector<std::size_t>& sizes,
                                     const Config& config);

/// osu_barrier: mean barrier latency.
double barrier_latency_us(mach::Machine& machine, coll::Component& comp,
                          const Config& config);

/// osu_latency: one-way pt2pt latency between two ranks (Fig. 1a, Fig. 3a).
double pt2pt_latency_us(mach::Machine& machine, p2p::Fabric& fabric,
                        int rank_a, int rank_b, std::size_t bytes,
                        const Config& config);

}  // namespace xhc::osu
