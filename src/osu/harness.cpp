#include "osu/harness.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <thread>

#include "obs/observer.h"
#include "util/check.h"
#include "util/prng.h"
#include "util/table.h"
#include "verify/verify.h"

namespace xhc::osu {

std::vector<std::size_t> default_sizes(std::size_t min_bytes,
                                       std::size_t max_bytes) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = min_bytes; s <= max_bytes; s *= 2) sizes.push_back(s);
  return sizes;
}

int guarded_main(const std::function<int()>& body) noexcept {
  try {
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
  }
  return 1;
}

void run_points(std::size_t n, int jobs,
                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs == 0) jobs = 1;
  }
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs > 1 ? jobs : 1), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(drain);
  for (auto& t : pool) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

namespace {

/// Shared per-rank accumulation without false sharing.
struct PaddedAcc {
  alignas(64) double value = 0.0;
};

/// Publishes the protocol verifier's summary (src/verify/) as gauges so
/// --metrics reports checked-build coverage next to the traffic counters,
/// plus the machine's modeled coherence counter deltas (coh_*, SimMachine
/// only — delta semantics keep repeated sweeps double-count free).
/// Cheap in every build; in plain builds the store/load counts stay zero.
void publish_verify_summary(mach::Machine& machine, obs::Observer* obs) {
  if (obs == nullptr) return;
  const verify::Summary s = machine.verify_ledger().summary();
  obs::Metrics& m = obs->metrics();
  m.set_gauge(obs::Gauge::kVerifyFlagsTracked, s.flags_tracked);
  m.set_gauge(obs::Gauge::kVerifyStoresChecked, s.stores_checked);
  m.set_gauge(obs::Gauge::kVerifyLoadsChecked, s.loads_checked);
  m.set_gauge(obs::Gauge::kVerifyViolations, s.violations);
  m.set_gauge(obs::Gauge::kVerifyExpectedFindings, s.expected_findings);
  machine.publish_coh_counters(m);
}

/// Per-size op-latency histogram plumbing shared by the collective sweeps.
/// Each rank records its timed iterations into a private row (single-writer,
/// allocation-free, safe inside the parallel region); finish() merges the
/// rows into one histogram labeled with the size, matching the CSV rows.
struct SizeHist {
  SizeHist(const Config& config, int n)
      : set(config.size_hists != nullptr ? std::make_unique<obs::HistSet>(n)
                                         : nullptr) {}
  void record(int rank, double seconds) noexcept {
    if (set != nullptr) set->record(rank, obs::HistKind::kOp, seconds);
  }
  void finish(const Config& config, std::size_t bytes) {
    if (set != nullptr) {
      config.size_hists->push_back({util::Table::fmt_bytes(bytes),
                                    set->merged(obs::HistKind::kOp)});
    }
  }
  std::unique_ptr<obs::HistSet> set;
};

/// Deterministic bounded allreduce operand: an exact multiple of 1/256 in
/// [-1, 1), derived from (seed, element index) with a splitmix64-style mix.
/// Bounded exact operands keep the float sum well-conditioned, so a
/// double-precision reference catches real payload corruption without
/// tripping over legitimate reassociation differences between components.
float verify_operand(std::uint64_t seed, std::size_t i) noexcept {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(static_cast<int>(z & 511u) - 256) *
         (1.0f / 256.0f);
}

}  // namespace

std::vector<SizeResult> bcast_sweep(mach::Machine& machine,
                                    coll::Component& comp,
                                    const std::vector<std::size_t>& sizes,
                                    const Config& config) {
  const int n = machine.n_ranks();
  if (config.observer != nullptr) comp.set_observer(config.observer);
  std::vector<SizeResult> results;
  results.reserve(sizes.size());

  for (const std::size_t bytes : sizes) {
    // One buffer per rank, owned (first-touch) by that rank. No zero-fill:
    // the root writes the full payload before iteration 0 and every other
    // rank receives all `bytes` from the collective before any read.
    std::vector<mach::Buffer> bufs;
    bufs.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      bufs.emplace_back(machine, r, bytes, /*zero=*/false);
    }
    std::vector<PaddedAcc> acc(static_cast<std::size_t>(n));
    SizeHist hist(config, n);

    const int total = config.warmup + config.iters;
    machine.run([&](mach::Ctx& ctx) {
      const int r = ctx.rank();
      void* buf = bufs[static_cast<std::size_t>(r)].get();
      for (int it = 0; it < total; ++it) {
        if (r == config.root && (config.modify_buffer || it == 0)) {
          ctx.write_payload(buf, bytes,
                            0x9000u + static_cast<std::uint64_t>(it));
        }
        ctx.barrier();
        const double t0 = ctx.now();
        comp.bcast(ctx, buf, bytes, config.root);
        const double t1 = ctx.now();
        if (it >= config.warmup) {
          acc[static_cast<std::size_t>(r)].value += t1 - t0;
          hist.record(r, t1 - t0);
        }
      }
    });

    if (config.verify) {
      std::vector<std::byte> expect(bytes);
      const std::uint64_t last_seed =
          0x9000u + static_cast<std::uint64_t>(
                        config.modify_buffer ? total - 1 : 0);
      util::fill_pattern(expect.data(), bytes, last_seed);
      for (int r = 0; r < n; ++r) {
        XHC_CHECK(std::memcmp(bufs[static_cast<std::size_t>(r)].get(),
                              expect.data(), bytes) == 0,
                  comp.name(), ": bcast payload mismatch at rank ", r,
                  " size ", bytes);
      }
    }

    SizeResult sr;
    sr.bytes = bytes;
    double sum = 0.0;
    double mn = 1e300;
    double mx = 0.0;
    for (int r = 0; r < n; ++r) {
      const double us =
          acc[static_cast<std::size_t>(r)].value / config.iters * 1e6;
      sum += us;
      mn = std::min(mn, us);
      mx = std::max(mx, us);
    }
    sr.avg_us = sum / n;
    sr.min_us = mn;
    sr.max_us = mx;
    results.push_back(sr);
    hist.finish(config, sr.bytes);
  }
  publish_verify_summary(machine, config.observer);
  return results;
}

std::vector<SizeResult> allreduce_sweep(mach::Machine& machine,
                                        coll::Component& comp,
                                        const std::vector<std::size_t>& sizes,
                                        const Config& config) {
  const int n = machine.n_ranks();
  if (config.observer != nullptr) comp.set_observer(config.observer);
  std::vector<SizeResult> results;
  results.reserve(sizes.size());

  for (const std::size_t bytes : sizes) {
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);
    const std::size_t real_bytes = count * sizeof(float);
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    for (int r = 0; r < n; ++r) {
      // Send operands are fully rewritten before iteration 0; receive
      // operands may be read-modify-written by components, so stay zeroed.
      sbufs.emplace_back(machine, r, real_bytes, /*zero=*/false);
      rbufs.emplace_back(machine, r, real_bytes);
    }
    std::vector<PaddedAcc> acc(static_cast<std::size_t>(n));
    SizeHist hist(config, n);

    const int total = config.warmup + config.iters;
    machine.run([&](mach::Ctx& ctx) {
      const int r = ctx.rank();
      void* sbuf = sbufs[static_cast<std::size_t>(r)].get();
      void* rbuf = rbufs[static_cast<std::size_t>(r)].get();
      for (int it = 0; it < total; ++it) {
        if (config.modify_buffer || it == 0) {
          // Every rank refreshes its contribution (the payload actually
          // changes between calls in real applications, §V-A).
          ctx.write_payload(sbuf, real_bytes,
                            0xA000u + static_cast<std::uint64_t>(
                                          it * 1000 + r));
          if (config.verify) {
            // Swap the timed garbage bytes for verifiable operands. The
            // modeled write above already charged the rewrite, and this
            // host-side fill is unmodeled, so timings stay identical.
            auto* f = static_cast<float*>(sbuf);
            const std::uint64_t seed =
                0xA000u + static_cast<std::uint64_t>(it * 1000 + r);
            for (std::size_t i = 0; i < count; ++i) {
              f[i] = verify_operand(seed, i);
            }
          }
        }
        ctx.barrier();
        const double t0 = ctx.now();
        comp.allreduce(ctx, sbuf, rbuf, count, mach::DType::kF32,
                       mach::ROp::kSum);
        const double t1 = ctx.now();
        if (it >= config.warmup) {
          acc[static_cast<std::size_t>(r)].value += t1 - t0;
          hist.record(r, t1 - t0);
        }
      }
    });

    if (config.verify) {
      // Element-wise check of every rank's result against a double-precision
      // reference of the last iteration's operands. The operands are exact
      // multiples of 1/256 in [-1, 1), so any summation order agrees with
      // the reference to well under the tolerance; a mismatch means payload
      // corruption, not reassociation.
      const int last_it = config.modify_buffer ? total - 1 : 0;
      std::vector<double> expect(count);
      for (int r = 0; r < n; ++r) {
        const std::uint64_t seed =
            0xA000u + static_cast<std::uint64_t>(last_it * 1000 + r);
        for (std::size_t i = 0; i < count; ++i) {
          expect[i] += static_cast<double>(verify_operand(seed, i));
        }
      }
      for (int r = 0; r < n; ++r) {
        const auto* got =
            static_cast<const float*>(rbufs[static_cast<std::size_t>(r)].get());
        for (std::size_t i = 0; i < count; ++i) {
          const double tol =
              1e-4 * std::max(1.0, std::abs(expect[i]));
          XHC_CHECK(std::abs(static_cast<double>(got[i]) - expect[i]) <= tol,
                    comp.name(), ": allreduce result mismatch at rank ", r,
                    " elem ", i, " size ", real_bytes, " (got ",
                    static_cast<double>(got[i]), ", want ", expect[i], ")");
        }
      }
    }

    SizeResult sr;
    sr.bytes = real_bytes;
    double sum = 0.0;
    double mn = 1e300;
    double mx = 0.0;
    for (int r = 0; r < n; ++r) {
      const double us =
          acc[static_cast<std::size_t>(r)].value / config.iters * 1e6;
      sum += us;
      mn = std::min(mn, us);
      mx = std::max(mx, us);
    }
    sr.avg_us = sum / n;
    sr.min_us = mn;
    sr.max_us = mx;
    results.push_back(sr);
    hist.finish(config, sr.bytes);
  }
  publish_verify_summary(machine, config.observer);
  return results;
}

std::vector<SizeResult> reduce_sweep(mach::Machine& machine,
                                     coll::Component& comp,
                                     const std::vector<std::size_t>& sizes,
                                     const Config& config) {
  const int n = machine.n_ranks();
  if (config.observer != nullptr) comp.set_observer(config.observer);
  std::vector<SizeResult> results;
  results.reserve(sizes.size());

  for (const std::size_t bytes : sizes) {
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);
    const std::size_t real_bytes = count * sizeof(float);
    std::vector<mach::Buffer> sbufs;
    std::vector<mach::Buffer> rbufs;
    for (int r = 0; r < n; ++r) {
      // Send operands are fully rewritten before iteration 0; receive
      // operands may be read-modify-written by components, so stay zeroed.
      sbufs.emplace_back(machine, r, real_bytes, /*zero=*/false);
      rbufs.emplace_back(machine, r, real_bytes);
    }
    std::vector<PaddedAcc> acc(static_cast<std::size_t>(n));
    SizeHist hist(config, n);

    const int total = config.warmup + config.iters;
    machine.run([&](mach::Ctx& ctx) {
      const int r = ctx.rank();
      void* sbuf = sbufs[static_cast<std::size_t>(r)].get();
      void* rbuf = rbufs[static_cast<std::size_t>(r)].get();
      for (int it = 0; it < total; ++it) {
        if (config.modify_buffer || it == 0) {
          ctx.write_payload(sbuf, real_bytes,
                            0xC000u + static_cast<std::uint64_t>(
                                          it * 1000 + r));
        }
        ctx.barrier();
        const double t0 = ctx.now();
        comp.reduce(ctx, sbuf, rbuf, count, mach::DType::kF32,
                    mach::ROp::kSum, config.root);
        const double t1 = ctx.now();
        if (it >= config.warmup) {
          acc[static_cast<std::size_t>(r)].value += t1 - t0;
          hist.record(r, t1 - t0);
        }
      }
    });

    SizeResult sr;
    sr.bytes = real_bytes;
    double sum = 0.0;
    double mn = 1e300;
    double mx = 0.0;
    for (int r = 0; r < n; ++r) {
      const double us =
          acc[static_cast<std::size_t>(r)].value / config.iters * 1e6;
      sum += us;
      mn = std::min(mn, us);
      mx = std::max(mx, us);
    }
    sr.avg_us = sum / n;
    sr.min_us = mn;
    sr.max_us = mx;
    results.push_back(sr);
    hist.finish(config, sr.bytes);
  }
  publish_verify_summary(machine, config.observer);
  return results;
}

double barrier_latency_us(mach::Machine& machine, coll::Component& comp,
                          const Config& config) {
  const int n = machine.n_ranks();
  if (config.observer != nullptr) comp.set_observer(config.observer);
  std::vector<PaddedAcc> acc(static_cast<std::size_t>(n));
  const int total = config.warmup + config.iters;
  machine.run([&](mach::Ctx& ctx) {
    for (int it = 0; it < total; ++it) {
      ctx.barrier();  // harness sync, outside the timed window
      const double t0 = ctx.now();
      comp.barrier(ctx);
      const double t1 = ctx.now();
      if (it >= config.warmup) {
        acc[static_cast<std::size_t>(ctx.rank())].value += t1 - t0;
      }
    }
  });
  double sum = 0.0;
  for (const auto& a : acc) sum += a.value;
  publish_verify_summary(machine, config.observer);
  return sum / n / config.iters * 1e6;
}

double pt2pt_latency_us(mach::Machine& machine, p2p::Fabric& fabric,
                        int rank_a, int rank_b, std::size_t bytes,
                        const Config& config) {
  XHC_REQUIRE(rank_a != rank_b, "need two distinct ranks");
  mach::Buffer buf_a(machine, rank_a, bytes);
  mach::Buffer buf_b(machine, rank_b, bytes);
  PaddedAcc acc;

  const int total = config.warmup + config.iters;
  machine.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    for (int it = 0; it < total; ++it) {
      if (r == rank_a && (config.modify_buffer || it == 0)) {
        ctx.write_payload(buf_a.get(), bytes,
                          0xB000u + static_cast<std::uint64_t>(it));
      }
      // Every rank joins the barrier; only the pair exchanges messages.
      ctx.barrier();
      if (r != rank_a && r != rank_b) continue;
      const double t0 = ctx.now();
      if (r == rank_a) {
        fabric.send(ctx, rank_b, it, buf_a.get(), bytes);
        fabric.recv(ctx, rank_b, total + it, buf_a.get(), bytes);
      } else {
        fabric.recv(ctx, rank_a, it, buf_b.get(), bytes);
        fabric.send(ctx, rank_a, total + it, buf_b.get(), bytes);
      }
      const double t1 = ctx.now();
      if (it >= config.warmup && r == rank_a) {
        acc.value += (t1 - t0) / 2.0;  // one-way latency
      }
    }
  });
  return acc.value / config.iters * 1e6;
}

}  // namespace xhc::osu
