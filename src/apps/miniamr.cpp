#include "apps/miniamr.h"

#include <vector>

namespace xhc::apps {

MiniAmrConfig miniamr_default() {
  MiniAmrConfig c;
  c.timesteps = 400;
  c.refine_every = 4;
  c.reductions_per_refine = 6;
  c.reduce_bytes = 24;
  c.compute_seconds = 150e-6;
  return c;
}

MiniAmrConfig miniamr_1k_levels() {
  MiniAmrConfig c;
  c.timesteps = 1000;
  c.refine_every = 1;  // refine frequency set to 1 timestep (paper §V-D3)
  c.reductions_per_refine = 8;
  c.reduce_bytes = 1024;
  c.compute_seconds = 120e-6;
  return c;
}

AppResult run_miniamr(mach::Machine& machine, coll::Component& comp,
                      const MiniAmrConfig& config) {
  const int n = machine.n_ranks();
  const std::size_t count = config.reduce_bytes / sizeof(std::int64_t);
  const std::size_t bytes = count * sizeof(std::int64_t);
  std::vector<mach::Buffer> sbufs;
  std::vector<mach::Buffer> rbufs;
  for (int r = 0; r < n; ++r) {
    sbufs.emplace_back(machine, r, bytes);
    rbufs.emplace_back(machine, r, bytes);
  }
  std::vector<PaddedTime> acc(static_cast<std::size_t>(n));

  const mach::RunResult run = machine.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    PaddedTime& a = acc[static_cast<std::size_t>(r)];
    void* sbuf = sbufs[static_cast<std::size_t>(r)].get();
    void* rbuf = rbufs[static_cast<std::size_t>(r)].get();

    for (int step = 0; step < config.timesteps; ++step) {
      // Stencil sweep over this rank's blocks.
      ctx.charge(config.compute_seconds);
      if (step % config.refine_every != 0) continue;
      // Refine phase: the ranks agree on block counts / refinement flags.
      for (int k = 0; k < config.reductions_per_refine; ++k) {
        ctx.write_payload(sbuf, bytes,
                          0x6100u + static_cast<std::uint64_t>(
                                        step * 100 + k * 10 + r));
        const double t0 = ctx.now();
        comp.allreduce(ctx, sbuf, rbuf, count, mach::DType::kI64,
                       mach::ROp::kSum);
        a.value += ctx.now() - t0;
        ++a.calls;
      }
    }
  });
  return finish_result(run, acc);
}

}  // namespace xhc::apps
