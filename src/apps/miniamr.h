// miniAMR proxy (paper §V-A, Fig. 13).
//
// miniAMR mimics adaptive-mesh-refinement workloads; its recurring refine
// step calls MPI_Allreduce to agree on global block counts and refinement
// decisions. The paper runs the "expanding sphere" example in two
// configurations:
//   * default (4 refinement levels, 400 timesteps): allreduces average a
//     couple tens of bytes per call;
//   * stress (1K refinement levels, refine every timestep, 1000 steps):
//     allreduce payloads average ~1 KB — the configuration where XBRC
//     struggles and XHC's small/medium-message path shines.
#pragma once

#include "apps/app_common.h"

namespace xhc::apps {

struct MiniAmrConfig {
  int timesteps = 400;
  int refine_every = 4;          ///< timesteps between refine phases
  int reductions_per_refine = 6; ///< allreduce calls per refine phase
  std::size_t reduce_bytes = 24; ///< payload per allreduce (i64 counts)
  double compute_seconds = 150e-6;  ///< stencil work per timestep per rank
};

/// The paper's default configuration (Fig. 13a).
MiniAmrConfig miniamr_default();
/// The 1K-refinement-level configuration (Fig. 13b).
MiniAmrConfig miniamr_1k_levels();

AppResult run_miniamr(mach::Machine& machine, coll::Component& comp,
                      const MiniAmrConfig& config);

}  // namespace xhc::apps
