#include "apps/pisvm.h"

#include <vector>

namespace xhc::apps {

AppResult run_pisvm(mach::Machine& machine, coll::Component& comp,
                    const PisvmConfig& config) {
  const int n = machine.n_ranks();
  std::vector<mach::Buffer> rows;
  std::vector<mach::Buffer> ctl;
  for (int r = 0; r < n; ++r) {
    rows.emplace_back(machine, r, config.row_bytes);
    ctl.emplace_back(machine, r, config.ctl_bytes);
  }
  std::vector<PaddedTime> acc(static_cast<std::size_t>(n));

  const mach::RunResult run = machine.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    PaddedTime& a = acc[static_cast<std::size_t>(r)];
    void* row = rows[static_cast<std::size_t>(r)].get();
    void* c = ctl[static_cast<std::size_t>(r)].get();

    for (int it = 0; it < config.iterations; ++it) {
      // Local gradient update over this rank's data shard.
      ctx.charge(config.compute_seconds);
      // PiSvM's master rank selects the working set and broadcasts the
      // corresponding kernel rows (master-based SMO).
      const int owner = 0;
      if (r == owner) {
        ctx.write_payload(row, config.row_bytes,
                          0x5100u + static_cast<std::uint64_t>(it));
        ctx.write_payload(c, config.ctl_bytes,
                          0x5200u + static_cast<std::uint64_t>(it));
      }
      double t0 = ctx.now();
      for (int k = 0; k < config.rows_per_iter; ++k) {
        comp.bcast(ctx, row, config.row_bytes, owner);
      }
      comp.bcast(ctx, c, config.ctl_bytes, owner);
      a.value += ctx.now() - t0;
      a.calls += static_cast<std::uint64_t>(config.rows_per_iter) + 1;
    }
  });
  return finish_result(run, acc);
}

}  // namespace xhc::apps
