// Common machinery for the application proxies (paper §V-A, §V-D3).
//
// Each proxy replays an application's communication pattern — the collective
// mix, message sizes and call frequency — interleaved with charged compute.
// That is exactly the structure that determines an application's sensitivity
// to collective performance: total win = (time share of the supported
// collectives) x (collective speedup), as the paper discusses for PiSvM.
#pragma once

#include <cstdint>

#include "coll/component.h"
#include "mach/machine.h"

namespace xhc::apps {

struct AppResult {
  double total_time = 0.0;       ///< slowest rank's wall time (seconds)
  double collective_time = 0.0;  ///< mean per-rank time inside collectives
  std::uint64_t collective_calls = 0;
};

/// Per-rank time accounting without false sharing.
struct PaddedTime {
  alignas(64) double value = 0.0;
  std::uint64_t calls = 0;
};

/// Fills an AppResult from a finished run.
AppResult finish_result(const mach::RunResult& run,
                        const std::vector<PaddedTime>& acc);

}  // namespace xhc::apps
