#include "apps/cntk.h"

namespace xhc::apps {

AppResult run_cntk(mach::Machine& machine, coll::Component& comp,
                   const CntkConfig& config) {
  const int n = machine.n_ranks();
  // One gradient buffer pair per (rank, layer); gradients are reduced in
  // place into the receive buffers, reusing the same tensors every
  // minibatch — the buffer-reuse pattern behind the >99% registration-cache
  // hit ratios the paper reports (§V-D3).
  std::vector<std::vector<mach::Buffer>> sbufs(
      static_cast<std::size_t>(n));
  std::vector<std::vector<mach::Buffer>> rbufs(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (const std::size_t bytes : config.layer_bytes) {
      sbufs[static_cast<std::size_t>(r)].emplace_back(machine, r, bytes);
      rbufs[static_cast<std::size_t>(r)].emplace_back(machine, r, bytes);
    }
  }
  std::vector<PaddedTime> acc(static_cast<std::size_t>(n));

  const mach::RunResult run = machine.run([&](mach::Ctx& ctx) {
    const int r = ctx.rank();
    PaddedTime& a = acc[static_cast<std::size_t>(r)];
    auto& my_s = sbufs[static_cast<std::size_t>(r)];
    auto& my_r = rbufs[static_cast<std::size_t>(r)];

    for (int mb = 0; mb < config.minibatches; ++mb) {
      ctx.charge(config.compute_seconds);  // forward + backward pass
      for (std::size_t l = 0; l < config.layer_bytes.size(); ++l) {
        const std::size_t bytes = config.layer_bytes[l];
        const std::size_t count = bytes / sizeof(float);
        // Fresh gradients each minibatch.
        ctx.write_payload(my_s[l].get(), bytes,
                          0x7100u + static_cast<std::uint64_t>(
                                        (mb * 10 + static_cast<int>(l)) *
                                            1000 +
                                        r));
        const double t0 = ctx.now();
        comp.allreduce(ctx, my_s[l].get(), my_r[l].get(), count,
                       mach::DType::kF32, mach::ROp::kSum);
        a.value += ctx.now() - t0;
        ++a.calls;
      }
    }
  });
  return finish_result(run, acc);
}

}  // namespace xhc::apps
