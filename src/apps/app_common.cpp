#include "apps/app_common.h"

namespace xhc::apps {

AppResult finish_result(const mach::RunResult& run,
                        const std::vector<PaddedTime>& acc) {
  AppResult result;
  result.total_time = run.max_time;
  double sum = 0.0;
  std::uint64_t calls = 0;
  for (const auto& a : acc) {
    sum += a.value;
    calls = std::max(calls, a.calls);
  }
  result.collective_time = acc.empty() ? 0.0 : sum / acc.size();
  result.collective_calls = calls;
  return result;
}

}  // namespace xhc::apps
