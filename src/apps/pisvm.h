// PiSvM proxy (paper §V-A, Fig. 12).
//
// PiSvM is a parallel SVM trainer whose MPI communication time is dominated
// by MPI_Bcast: every SMO-style outer iteration broadcasts the selected
// working-set rows of the kernel matrix plus small control words. The proxy
// replays that pattern for the paper's mnist_train_576_rbf_8vr dataset
// shape (576 features → kernel rows of a few KB).
#pragma once

#include "apps/app_common.h"

namespace xhc::apps {

struct PisvmConfig {
  int iterations = 250;          ///< SMO outer iterations
  std::size_t row_bytes = 4608;  ///< one kernel row: 576 features x 8 B
  int rows_per_iter = 2;         ///< working-set size (two rows per step)
  std::size_t ctl_bytes = 16;    ///< convergence / index control bcasts
  double compute_seconds = 60e-6;  ///< per-rank gradient update per iteration
};

AppResult run_pisvm(mach::Machine& machine, coll::Component& comp,
                    const PisvmConfig& config);

}  // namespace xhc::apps
