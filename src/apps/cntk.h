// CNTK proxy (paper §V-A, Fig. 14).
//
// CNTK's data-parallel SGD allreduces the gradient tensors after every
// minibatch (the paper replaces Iallreduce with the blocking variant after
// verifying the swap is performance-neutral). AlexNet's full gradient
// footprint is ~240 MB; the proxy scales it to a 16 MB layered set so a
// full three-system sweep stays CI-sized — every component moves the same
// bytes, so the scaling is ranking-neutral (see DESIGN.md §5).
#pragma once

#include <vector>

#include "apps/app_common.h"

namespace xhc::apps {

struct CntkConfig {
  int minibatches = 12;  ///< one scaled-down epoch
  /// Per-layer gradient tensor sizes (bytes, float32 elements).
  std::vector<std::size_t> layer_bytes = {
      2 * 1024 * 1024,  // conv stack
      8 * 1024 * 1024,  // fc6 (the AlexNet giant)
      4 * 1024 * 1024,  // fc7
      2 * 1024 * 1024,  // fc8 + biases
  };
  double compute_seconds = 2.0e-3;  ///< forward+backward per minibatch
};

AppResult run_cntk(mach::Machine& machine, coll::Component& comp,
                   const CntkConfig& config);

}  // namespace xhc::apps
